package remshard

// A Partitioner decides which shard owns a key. It must be a pure
// function of (key, shards): New calls it once per vocabulary key and
// freezes the resulting assignment for the store's lifetime, and the
// determinism contract's rule 8 (sharded answers ≡ monolithic answers)
// holds for any assignment at all — the partitioner only moves where a
// key's tiles live, never what they hold.
type Partitioner interface {
	// Shard returns the owning shard for key, in [0, shards). A result
	// outside that range makes New fail — partitioners signal "no
	// assignment" that way rather than by panicking.
	Shard(key string, shards int) int
}

// PartitionFunc adapts a plain function to the Partitioner interface —
// range partitioners, modulo-by-suffix schemes, test stubs.
type PartitionFunc func(key string, shards int) int

// Shard implements Partitioner.
func (f PartitionFunc) Shard(key string, shards int) int { return f(key, shards) }

// HashByKey is the default partitioner: FNV-1a over the key bytes,
// reduced modulo the shard count. MAC-address vocabularies spread
// near-uniformly, no coordination or configuration needed.
type HashByKey struct{}

// Shard implements Partitioner.
func (HashByKey) Shard(key string, shards int) int {
	if shards < 1 {
		return -1
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return int(h % uint32(shards))
}

// Explicit pins keys to shards by name — the per-building / per-floor
// layout: every AP of one floor lands in one shard, so a re-survey of
// that floor rebuilds exactly one shard and the rest keep serving
// untouched.
type Explicit struct {
	// Assign maps key → shard.
	Assign map[string]int
	// Fallback routes keys missing from Assign; nil makes New reject
	// vocabularies with unassigned keys (the safe default for curated
	// layouts).
	Fallback Partitioner
}

// Shard implements Partitioner.
func (e Explicit) Shard(key string, shards int) int {
	if s, ok := e.Assign[key]; ok {
		return s
	}
	if e.Fallback != nil {
		return e.Fallback.Shard(key, shards)
	}
	return -1
}
