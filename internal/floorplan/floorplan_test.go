package floorplan

import (
	"testing"

	"repro/internal/geom"
)

func TestPlanesCrossed(t *testing.T) {
	cases := []struct {
		a, b, pitch float64
		want        int
	}{
		{0.5, 3.5, 1.0, 3},   // planes at 1, 2, 3
		{0.5, 0.9, 1.0, 0},   // same cell
		{3.5, 0.5, 1.0, 3},   // direction-independent
		{-0.5, 0.5, 1.0, 1},  // plane at 0
		{0.1, 8.3, 4.0, 2},   // planes at 4, 8
		{1.0, 1.0, 1.0, 0},   // degenerate segment
		{0.5, 2.5, 0, 0},     // disabled pitch
		{-3.5, -0.5, 1.0, 3}, // negative side: planes at -3, -2, -1
	}
	for _, tc := range cases {
		if got := planesCrossed(tc.a, tc.b, tc.pitch); got != tc.want {
			t.Errorf("planesCrossed(%v, %v, %v) = %d, want %d", tc.a, tc.b, tc.pitch, got, tc.want)
		}
	}
}

func TestGridWallsCrossings(t *testing.T) {
	g := GridWalls{PitchX: 4, PitchY: 4, FloorHeight: 3}
	walls, floors := g.Crossings(geom.V(1, 1, 1), geom.V(9, 1, 1))
	if walls != 2 || floors != 0 {
		t.Errorf("x traverse: walls=%d floors=%d, want 2, 0", walls, floors)
	}
	walls, floors = g.Crossings(geom.V(1, 1, 1), geom.V(1, 1, 7))
	if walls != 0 || floors != 2 {
		t.Errorf("z traverse: walls=%d floors=%d, want 0, 2", walls, floors)
	}
	walls, floors = g.Crossings(geom.V(1, 1, 1), geom.V(5, 5, 4))
	if walls != 2 || floors != 1 {
		t.Errorf("diagonal: walls=%d floors=%d, want 2, 1", walls, floors)
	}
}

func TestGridWallsOriginShift(t *testing.T) {
	g := GridWalls{PitchX: 4, PitchY: 4, FloorHeight: 3, Origin: geom.V(-2, 0, 0)}
	// Planes now at x = -2, 2, 6, ... A segment x∈[0,3] crosses x=2 only.
	walls, _ := g.Crossings(geom.V(0, 1, 1), geom.V(3, 1, 1))
	if walls != 1 {
		t.Errorf("shifted grid walls = %d, want 1", walls)
	}
}

func TestEnvironmentObstructionLoss(t *testing.T) {
	env := &Environment{
		Room:        geom.MustCuboid(geom.V(0, 0, 0), 4, 4, 3),
		Grid:        GridWalls{PitchX: 4, PitchY: 4, FloorHeight: 3, Origin: geom.V(-0.1, -0.1, -0.1)},
		WallLossDB:  6,
		FloorLossDB: 13,
	}
	// Within one grid cell: no loss.
	if got := env.ObstructionLossDB(geom.V(0.5, 0.5, 0.5), geom.V(3, 3, 2)); got != 0 {
		t.Errorf("in-cell loss = %v, want 0", got)
	}
	// One wall crossing.
	if got := env.ObstructionLossDB(geom.V(0.5, 0.5, 0.5), geom.V(5, 0.5, 0.5)); got != 6 {
		t.Errorf("one-wall loss = %v, want 6", got)
	}
	// One wall + one floor.
	if got := env.ObstructionLossDB(geom.V(0.5, 0.5, 0.5), geom.V(5, 0.5, 3.5)); got != 19 {
		t.Errorf("wall+floor loss = %v, want 19", got)
	}
}

func TestEnvironmentExtraWalls(t *testing.T) {
	env := &Environment{
		Room: geom.MustCuboid(geom.V(0, 0, 0), 4, 4, 3),
		Extra: []Wall{{
			Name:   "panel",
			Panel:  geom.Rect{Min: geom.V(2, 0, 0), Max: geom.V(2, 4, 3)},
			LossDB: 5,
		}},
	}
	if got := env.ObstructionLossDB(geom.V(1, 1, 1), geom.V(3, 1, 1)); got != 5 {
		t.Errorf("extra wall loss = %v, want 5", got)
	}
	if got := env.ObstructionLossDB(geom.V(1, 1, 1), geom.V(1.5, 1, 1)); got != 0 {
		t.Errorf("non-crossing loss = %v, want 0", got)
	}
}

func TestPaperApartment(t *testing.T) {
	env := PaperApartment()
	if err := env.Validate(); err != nil {
		t.Fatalf("paper apartment invalid: %v", err)
	}
	s := env.Room.Size()
	if s != geom.V(3.74, 3.20, 2.10) {
		t.Errorf("room size = %v", s)
	}
	// The room interior must be free of grid planes: two points inside the
	// room must see zero obstruction loss.
	if got := env.ObstructionLossDB(geom.V(0.1, 0.1, 0.1), geom.V(3.6, 3.1, 2.0)); got != 0 {
		t.Errorf("in-room obstruction = %v dB, want 0", got)
	}
	// A link from a neighbouring apartment must be attenuated.
	if got := env.ObstructionLossDB(geom.V(-4, 1, 1), geom.V(1, 1, 1)); got <= 0 {
		t.Errorf("neighbour link obstruction = %v dB, want > 0", got)
	}
	// The core direction must point toward +x / −y per §III-A.
	if env.CoreDirection.X <= 0 || env.CoreDirection.Y >= 0 {
		t.Errorf("core direction = %v, want +x/−y", env.CoreDirection)
	}
	// The thick wall segment must attenuate links crossing the high-y wall.
	with := env.ObstructionLossDB(geom.V(1, 5, 1), geom.V(1, 3.0, 1))
	without := env.ObstructionLossDB(geom.V(1, 2.5, 1), geom.V(1, 3.0, 1))
	if with <= without {
		t.Errorf("thick segment not attenuating: crossing=%v non-crossing=%v", with, without)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := PaperApartment()

	bad := *good
	bad.WallLossDB = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative wall loss accepted")
	}

	bad = *good
	bad.Extra = []Wall{{Name: "broken", Panel: geom.Rect{Min: geom.V(0, 0, 0), Max: geom.V(1, 1, 1)}, LossDB: 3}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid panel accepted")
	}

	bad = *good
	bad.Extra = []Wall{{Name: "negative", Panel: geom.Rect{Min: geom.V(0, 1, 0), Max: geom.V(1, 1, 1)}, LossDB: -3}}
	if err := bad.Validate(); err == nil {
		t.Error("negative panel loss accepted")
	}
}
