// Package floorplan models the indoor environment the REM is generated in:
// the scan room itself, the surrounding apartment building, and the walls and
// floors radio signals must penetrate. The paper's validation environment —
// a living room in a large apartment building in Antwerp — is available as a
// ready-made constructor.
package floorplan

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Wall is an explicit wall panel with a penetration loss in dB. Explicit
// panels complement the regular building grid for local features — e.g. the
// paper notes a 40 cm wider wall segment on the side where UAV B scanned,
// which measurably reduced its sample count.
type Wall struct {
	Panel geom.Rect
	// LossDB is the attenuation added per crossing of this panel.
	LossDB float64
	// Name labels the wall for diagnostics.
	Name string
}

// GridWalls models the repetitive structure of an apartment building as
// infinite wall planes on a regular pitch: interior walls every PitchX metres
// along x and every PitchY metres along y, and concrete floor slabs every
// FloorHeight metres along z. Crossings are counted analytically, which keeps
// whole-building propagation cheap while capturing the dominant multi-wall
// behaviour (COST-231 style).
type GridWalls struct {
	// PitchX and PitchY are the apartment-wall spacings in metres.
	PitchX, PitchY float64
	// FloorHeight is the storey height in metres.
	FloorHeight float64
	// Origin offsets the wall grid relative to the scan room's frame.
	Origin geom.Vec3
}

// Crossings returns the number of interior-wall planes and floor slabs the
// segment from a to b penetrates.
func (g GridWalls) Crossings(a, b geom.Vec3) (walls, floors int) {
	walls = planesCrossed(a.X-g.Origin.X, b.X-g.Origin.X, g.PitchX) +
		planesCrossed(a.Y-g.Origin.Y, b.Y-g.Origin.Y, g.PitchY)
	floors = planesCrossed(a.Z-g.Origin.Z, b.Z-g.Origin.Z, g.FloorHeight)
	return walls, floors
}

// planesCrossed counts how many planes at integer multiples of pitch lie
// strictly between coordinates a and b.
func planesCrossed(a, b, pitch float64) int {
	if pitch <= 0 {
		return 0
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	// Planes at k*pitch with lo < k*pitch < hi.
	first := math.Floor(lo/pitch) + 1
	last := math.Ceil(hi/pitch) - 1
	if last < first {
		return 0
	}
	return int(last-first) + 1
}

// Environment is the complete propagation geometry: the scan room, the
// surrounding building grid, explicit wall panels, per-crossing losses, and
// the direction of the building core (the paper observes AP density — and
// hence sample counts — increasing toward the core, i.e. along +x and −y of
// the room frame).
type Environment struct {
	// Room is the scan volume in local coordinates.
	Room geom.Cuboid
	// Grid models the building's repetitive walls. Zero value disables it.
	Grid GridWalls
	// WallLossDB is the loss per interior-wall crossing of the grid.
	WallLossDB float64
	// FloorLossDB is the loss per floor-slab crossing of the grid.
	FloorLossDB float64
	// Extra holds explicit wall panels with individual losses.
	Extra []Wall
	// CoreDirection is the unit vector from the room toward the building
	// core, used by the AP population generator.
	CoreDirection geom.Vec3
}

// Validate checks the environment for configuration errors.
func (e *Environment) Validate() error {
	if e.Room.Volume() <= 0 {
		return fmt.Errorf("floorplan: room has non-positive volume")
	}
	if e.WallLossDB < 0 || e.FloorLossDB < 0 {
		return fmt.Errorf("floorplan: negative wall/floor loss (%g, %g)", e.WallLossDB, e.FloorLossDB)
	}
	for _, w := range e.Extra {
		if !w.Panel.Valid() {
			return fmt.Errorf("floorplan: wall %q has an invalid panel", w.Name)
		}
		if w.LossDB < 0 {
			return fmt.Errorf("floorplan: wall %q has negative loss", w.Name)
		}
	}
	return nil
}

// ObstructionLossDB returns the total wall/floor penetration loss in dB along
// the straight path from a to b.
func (e *Environment) ObstructionLossDB(a, b geom.Vec3) float64 {
	walls, floors := e.Grid.Crossings(a, b)
	loss := float64(walls)*e.WallLossDB + float64(floors)*e.FloorLossDB
	seg := geom.Segment{A: a, B: b}
	for _, w := range e.Extra {
		if _, ok := w.Panel.Intersects(seg); ok {
			loss += w.LossDB
		}
	}
	return loss
}

// PaperApartment returns the validation environment of the paper: the
// 3.74 × 3.20 × 2.10 m living room of a condo apartment inside a large
// apartment building, with the building core toward +x / −y, typical
// brick interior walls on a ~4 m pitch, concrete floor slabs on a 2.8 m
// storey height, and the 40 cm-wider (i.e. lossier) wall segment on the
// high-y side where UAV B scanned.
func PaperApartment() *Environment {
	room := geom.PaperScanVolume()
	env := &Environment{
		Room: room,
		Grid: GridWalls{
			PitchX:      4.2,
			PitchY:      4.0,
			FloorHeight: 2.8,
			// Shift the grid so the room interior contains no grid plane:
			// the scan room spans x∈[0,3.74], y∈[0,3.20], z∈[0,2.10]
			// and sits just inside one grid cell.
			Origin: geom.V(-0.23, -0.40, -0.35),
		},
		WallLossDB:  9.0, // interior brick wall, 2.4 GHz
		FloorLossDB: 16.0,
		// The thicker wall segment on the high-y side of the room adds
		// extra attenuation for signals arriving from −y… i.e. it sits at
		// the room's y-max boundary, penalising links that cross it.
		Extra: []Wall{
			{
				Name:   "thick-segment",
				Panel:  geom.Rect{Min: geom.V(0, 3.60, -3), Max: geom.V(3.74, 3.60, 3)},
				LossDB: 8.0, // extra loss of the 40 cm wider segment
			},
		},
		// Positive x and negative y point toward the building core (§III-A).
		CoreDirection: geom.V(1, -1, 0).Unit(),
	}
	return env
}
