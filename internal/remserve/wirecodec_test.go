package remserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rem"
)

// postWith issues a POST /at with explicit Content-Type and Accept
// headers and returns status, headers and body.
func postWith(t testing.TB, url string, body []byte, contentType, accept string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/at", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, r.Header, b
}

// jsonBatchBody renders the canonical JSON batch request for key/pts.
func jsonBatchBody(t testing.TB, key string, pts []geom.Vec3) []byte {
	t.Helper()
	arr := make([][3]float64, len(pts))
	for i, p := range pts {
		arr[i] = [3]float64{p.X, p.Y, p.Z}
	}
	b, err := json.Marshal(map[string]any{"key": key, "points": arr})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWireRule8AcrossFormats is the binary extension of determinism
// rule 8 (the PR's acceptance identity): for shard counts 1, 2 and 4,
// every pairing of request codec (JSON / binary) and response codec
// (JSON / binary) on POST /at yields float64s bit-identical to a direct
// AtBatchInto on the same store, at the same snapshot version — and the
// JSON response bytes are identical across request codecs, so the JSON
// wire is provably untouched by the negotiation. The Accept-negotiated
// binary variants of GET /at and GET /strongest are pinned the same
// way.
func TestWireRule8AcrossFormats(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			ss, mono, keys := newServedShards(t, 9, shards)
			srv := httptest.NewServer(NewSharded(ss, Options{}))
			defer srv.Close()

			key := keys[2]
			pts := testPoints()
			want := make([]float64, len(pts))
			wantVer, err := ss.AtBatchInto(want, key, pts)
			if err != nil {
				t.Fatal(err)
			}
			monoWant := make([]float64, len(pts))
			if err := mono.AtBatchInto(monoWant, key, pts); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(monoWant[i]) {
					t.Fatalf("rule 8 broken in the library itself at point %d", i)
				}
			}

			jsonBody := jsonBatchBody(t, key, pts)
			binBody := AppendBatchRequest(nil, key, pts)

			// Reference JSON response: JSON in, JSON out.
			status, hdr, jsonResp := postWith(t, srv.URL, jsonBody, "application/json", "")
			if status != http.StatusOK {
				t.Fatalf("JSON/JSON: status %d: %s", status, jsonResp)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("JSON/JSON Content-Type %q", ct)
			}

			// Binary request, JSON response: bytes must equal the pure-JSON
			// exchange exactly — the response codec is blind to the request
			// codec.
			status, _, crossResp := postWith(t, srv.URL, binBody, WireContentType, "application/json")
			if status != http.StatusOK {
				t.Fatalf("binary/JSON: status %d: %s", status, crossResp)
			}
			if !bytes.Equal(crossResp, jsonResp) {
				t.Fatalf("binary/JSON response differs from JSON/JSON:\n got %q\nwant %q", crossResp, jsonResp)
			}

			// Binary responses, from either request codec: decoded value
			// bits ≡ the direct library answer, version included.
			for _, req := range []struct {
				name string
				body []byte
				ct   string
			}{
				{"JSON/binary", jsonBody, "application/json"},
				{"binary/binary", binBody, WireContentType},
			} {
				status, hdr, resp := postWith(t, srv.URL, req.body, req.ct, WireContentType)
				if status != http.StatusOK {
					t.Fatalf("%s: status %d: %s", req.name, status, resp)
				}
				if ct := hdr.Get("Content-Type"); ct != WireContentType {
					t.Fatalf("%s: Content-Type %q, want %q", req.name, ct, WireContentType)
				}
				vals, ver, err := DecodeBatchResponse(resp)
				if err != nil {
					t.Fatalf("%s: %v", req.name, err)
				}
				if ver != wantVer {
					t.Fatalf("%s: version %d, want %d", req.name, ver, wantVer)
				}
				if len(vals) != len(want) {
					t.Fatalf("%s: %d values, want %d", req.name, len(vals), len(want))
				}
				for i := range vals {
					if math.Float64bits(vals[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s: value %d bits %x, want %x", req.name, i, math.Float64bits(vals[i]), math.Float64bits(want[i]))
					}
				}
			}

			// GET /at with the binary Accept: the "REMS" keyed message.
			p := pts[0]
			pv, pver, err := ss.At(key, p)
			if err != nil {
				t.Fatal(err)
			}
			req, err := http.NewRequest(http.MethodGet,
				fmt.Sprintf("%s/at?key=%s&x=%g&y=%g&z=%g", srv.URL, key, p.X, p.Y, p.Z), nil)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Accept", WireContentType)
			r, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				t.Fatalf("GET /at binary: status %d: %s", r.StatusCode, body)
			}
			gk, gv, gver, err := DecodeKeyedResponse(body)
			if err != nil {
				t.Fatal(err)
			}
			if gk != key || gver != pver || math.Float64bits(gv) != math.Float64bits(pv) {
				t.Fatalf("GET /at binary: (%s, %x, v%d), want (%s, %x, v%d)",
					gk, math.Float64bits(gv), gver, key, math.Float64bits(pv), pver)
			}

			// GET /strongest with the binary Accept.
			sk, sv, sver, err := ss.Strongest(p)
			if err != nil {
				t.Fatal(err)
			}
			req, err = http.NewRequest(http.MethodGet,
				fmt.Sprintf("%s/strongest?x=%g&y=%g&z=%g", srv.URL, p.X, p.Y, p.Z), nil)
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Accept", WireContentType)
			r, err = http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ = io.ReadAll(r.Body)
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				t.Fatalf("GET /strongest binary: status %d: %s", r.StatusCode, body)
			}
			gk, gv, gver, err = DecodeKeyedResponse(body)
			if err != nil {
				t.Fatal(err)
			}
			if gk != sk || gver != sver || math.Float64bits(gv) != math.Float64bits(sv) {
				t.Fatalf("GET /strongest binary: (%s, %x, v%d), want (%s, %x, v%d)",
					gk, math.Float64bits(gv), gver, sk, math.Float64bits(sv), sver)
			}
		})
	}
}

// TestWireNaNBitsSurvive pins the one capability JSON cannot offer: a
// non-finite cell value crosses the binary wire with its exact IEEE-754
// bits, where the JSON path must degrade it to null.
func TestWireNaNBitsSurvive(t *testing.T) {
	vals := []float64{math.NaN(), math.Inf(1), -12.5}
	b := appendWireBatchResponse(nil, 7, vals)
	got, ver, err := DecodeBatchResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 7 || len(got) != len(vals) {
		t.Fatalf("decoded (v%d, %d values), want (v7, %d)", ver, len(got), len(vals))
	}
	for i := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("value %d bits %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(vals[i]))
		}
	}
}

// TestWireMalformed is the binary counterpart of the JSON malformed
// table: every way a binary batch body can be wrong, pinned to its
// status code. The server runs with tight caps so the 413 surface is
// reachable with small bodies.
func TestWireMalformed(t *testing.T) {
	ss, _, keys := newServedShards(t, 4, 2)
	srv := httptest.NewServer(NewSharded(ss, Options{MaxBatchBytes: 256, MaxBatchPoints: 4}))
	defer srv.Close()
	key := keys[0]

	valid := AppendBatchRequest(nil, key, testPoints()[:2])

	mutate := func(mut func([]byte) []byte) []byte {
		return mut(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"valid", valid, 200},
		{"empty body", nil, 400},
		{"truncated header", valid[:wireReqHeaderLen-1], 400},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), 400},
		{"bad version", mutate(func(b []byte) []byte { rem.PutU32(b[4:], 99); return b }), 400},
		{"zero key length", mutate(func(b []byte) []byte { rem.PutU32(b[8:], 0); return b }), 400},
		{"key length over codec bound", mutate(func(b []byte) []byte { rem.PutU32(b[8:], rem.WireMaxKeyLen+1); return b }), 400},
		// A count whose byte total wraps uint32 (and would wrap int on
		// 32-bit) must fail the size-consistency check — a 400 malformed
		// body, never an allocation.
		{"count overflow", mutate(func(b []byte) []byte { rem.PutU32(b[12:], 0xFFFFFFFF); return b }), 400},
		{"count disagrees with body", mutate(func(b []byte) []byte { rem.PutU32(b[12:], 3); return b }), 400},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xAB), 400},
		{"truncated points", valid[:len(valid)-8], 400},
		{"NaN coordinate", mutate(func(b []byte) []byte {
			rem.PutF64(b[wireReqHeaderLen+len(key):], math.NaN())
			return b
		}), 400},
		{"Inf coordinate", mutate(func(b []byte) []byte {
			rem.PutF64(b[wireReqHeaderLen+len(key)+8:], math.Inf(-1))
			return b
		}), 400},
		{"unknown key", AppendBatchRequest(nil, "nope", testPoints()[:1]), 404},
		{"too many points", AppendBatchRequest(nil, key, testPoints()), 413},
		{"oversized body", AppendBatchRequest(nil, key+strings.Repeat("x", 300), nil), 413},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, body := postWith(t, srv.URL, tc.body, WireContentType, "")
			if status != tc.want {
				t.Fatalf("status %d, want %d (%s)", status, tc.want, body)
			}
		})
	}

}

// FuzzWireBatchDecode hammers the binary batch decoder with arbitrary
// bytes: it must never panic, and whenever it accepts a body,
// re-encoding the decoded batch must reproduce the input byte for byte
// (the format has no padding or redundancy, so acceptance implies
// canonical form).
func FuzzWireBatchDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("REMQ"))
	f.Add(AppendBatchRequest(nil, "AA:BB:CC:DD:EE:FF", nil))
	f.Add(AppendBatchRequest(nil, "k", []geom.Vec3{{X: 1, Y: 2, Z: 3}}))
	f.Add(AppendBatchRequest(nil, "AA:BB:00:00:00:01", testPoints()))
	trunc := AppendBatchRequest(nil, "key", testPoints())
	f.Add(trunc[:len(trunc)-5])
	f.Fuzz(func(t *testing.T, body []byte) {
		bb := &buffers{}
		if err := decodeWireBatch(body, bb, DefaultMaxBatchPoints, false); err != nil {
			we, ok := err.(*wireError)
			if !ok {
				t.Fatalf("non-wireError %T from decode", err)
			}
			if we.status != 400 && we.status != 413 {
				t.Fatalf("decode error status %d, want 400/413", we.status)
			}
			return
		}
		rt := AppendBatchRequest(nil, bb.req.Key, bb.pts)
		if !bytes.Equal(rt, body) {
			t.Fatalf("accepted non-canonical body:\n in  %x\n out %x", body, rt)
		}
	})
}

// TestWireBatchDecodeZeroAlloc pins the hot-path claim directly: once
// the key memo and the point buffer are warm, decoding a binary batch
// allocates nothing — and a key change still decodes correctly (at the
// cost of the one string copy the memo exists to amortise).
func TestWireBatchDecodeZeroAlloc(t *testing.T) {
	bb := &buffers{}
	body := AppendBatchRequest(nil, "AA:BB:00:00:00:01", testPoints())
	if err := decodeWireBatch(body, bb, 16, false); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := decodeWireBatch(body, bb, 16, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state binary decode allocates %v/op, want 0", allocs)
	}
	other := AppendBatchRequest(nil, "key-b", testPoints()[:1])
	if err := decodeWireBatch(other, bb, 16, false); err != nil {
		t.Fatal(err)
	}
	if bb.req.Key != "key-b" || len(bb.pts) != 1 {
		t.Fatalf("key change decoded (%q, %d pts), want (%q, 1)", bb.req.Key, len(bb.pts), "key-b")
	}
}

// TestContentNegotiation pins the header parsing: which Content-Type
// strings select the binary request codec, and which Accept headers
// switch the response codec.
func TestContentNegotiation(t *testing.T) {
	ctCases := []struct {
		ct   string
		want bool
	}{
		{WireContentType, true},
		{WireContentType + "; charset=binary", true},
		{"  " + WireContentType + " ; v=1", true},
		{"application/json", false},
		{"", false},
		{"application/x-rem-batch2", false},
	}
	for _, tc := range ctCases {
		if got := isWireContentType(tc.ct); got != tc.want {
			t.Errorf("isWireContentType(%q) = %v, want %v", tc.ct, got, tc.want)
		}
	}
	acceptCases := []struct {
		accept string
		want   bool
	}{
		{WireContentType, true},
		{"application/json, " + WireContentType, true},
		{WireContentType + ";q=0.5", true},
		{WireContentType + ";q=0", false},
		{WireContentType + "; q=0.0", false},
		{"*/*", false},
		{"application/json", false},
		{"", false},
	}
	for _, tc := range acceptCases {
		if got := acceptsWire(tc.accept); got != tc.want {
			t.Errorf("acceptsWire(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
	gzipCases := []struct {
		header string
		want   bool
	}{
		{"gzip", true},
		{"GZIP", true},
		{"x-gzip", true},
		{"br, gzip;q=0.8", true},
		{"gzip;q=0", false},
		{"br", false},
		{"*", false},
		{"", false},
	}
	for _, tc := range gzipCases {
		if got := acceptsGzip(tc.header); got != tc.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}
