package remserve

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/rem"
	"repro/internal/remshard"
	"repro/internal/remstore"
	"repro/internal/remwal"
)

// TestMalformedRequests is the table of everything a client can get
// wrong: bad and non-finite floats, missing parameters, unknown keys,
// oversized and malformed batch bodies, wrong methods and unknown
// paths — each pinned to its status code.
func TestMalformedRequests(t *testing.T) {
	ss, _, keys := newServedShards(t, 4, 2)
	// Ingest enabled with the serving vocabulary as validator, so
	// POST /observe shares the table (and the body/point caps) with
	// the read batches.
	vocab := make(map[string]bool, len(keys))
	for _, k := range keys {
		vocab[k] = true
	}
	q := remwal.NewQueue(remwal.QueueConfig{Capacity: 64})
	defer q.Close()
	q.SetValidator(func(b remwal.Batch) error {
		if !vocab[b.Key] {
			return fmt.Errorf("%w: %q", rem.ErrUnknownKey, b.Key)
		}
		return nil
	})
	srv := httptest.NewServer(NewSharded(ss, Options{
		MaxBatchBytes: 256, MaxBatchPoints: 4,
		Ingest: IngestOptions{Queue: q},
	}))
	defer srv.Close()
	key := keys[0]

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		ct     string // Content-Type; "" means none (JSON path)
		want   int
		allow  string // expected Allow header on 405s
	}{
		{name: "at ok", method: "GET", path: "/at?key=" + key + "&x=1&y=1&z=1", want: 200},
		{name: "at missing key", method: "GET", path: "/at?x=1&y=1", want: 400},
		{name: "at missing y", method: "GET", path: "/at?key=" + key + "&x=1", want: 400},
		{name: "at bad float", method: "GET", path: "/at?key=" + key + "&x=abc&y=1", want: 400},
		{name: "at empty float", method: "GET", path: "/at?key=" + key + "&x=&y=1", want: 400},
		{name: "at NaN", method: "GET", path: "/at?key=" + key + "&x=NaN&y=1", want: 400},
		{name: "at Inf", method: "GET", path: "/at?key=" + key + "&x=1&y=-Inf", want: 400},
		{name: "at escaped exponent sign", method: "GET", path: "/at?key=" + key + "&x=1e%2B0&y=1", want: 200},
		{name: "at literal plus is a space", method: "GET", path: "/at?key=" + key + "&x=1e+0&y=1", want: 400},
		{name: "at unknown key", method: "GET", path: "/at?key=nope&x=1&y=1", want: 404},
		{name: "at bad escape", method: "GET", path: "/at?key=%zz&x=1&y=1", want: 400},
		{name: "at wrong method", method: "DELETE", path: "/at?key=" + key + "&x=1&y=1", want: 405, allow: "GET, POST"},
		{name: "strongest ok", method: "GET", path: "/strongest?x=1&y=1", want: 200},
		{name: "strongest bad float", method: "GET", path: "/strongest?x=1&y=1e", want: 400},
		{name: "strongest wrong method", method: "DELETE", path: "/strongest?x=1&y=1", want: 405, allow: "GET, POST"},
		{name: "strongest batch ok", method: "POST", path: "/strongest", body: `{"points":[[1,1,1]]}`, want: 200},
		{name: "strongest batch empty points", method: "POST", path: "/strongest", body: `{"points":[]}`, want: 200},
		{name: "strongest batch key ignored", method: "POST", path: "/strongest", body: `{"key":"nope","points":[[1,1,1]]}`, want: 200},
		{name: "strongest batch bad json", method: "POST", path: "/strongest", body: `{"points":`, want: 400},
		{name: "strongest batch overflow point", method: "POST", path: "/strongest", body: `{"points":[[1,1e999,1]]}`, want: 400},
		{name: "strongest batch too many points", method: "POST", path: "/strongest",
			body: `{"points":[[1,1,1],[1,1,1],[1,1,1],[1,1,1],[1,1,1]]}`, want: 413},
		{name: "batch ok", method: "POST", path: "/at", body: `{"key":"` + key + `","points":[[1,1,1]]}`, want: 200},
		{name: "batch empty points", method: "POST", path: "/at", body: `{"key":"` + key + `","points":[]}`, want: 200},
		{name: "batch bad json", method: "POST", path: "/at", body: `{"key":`, want: 400},
		{name: "batch missing key", method: "POST", path: "/at", body: `{"points":[[1,1,1]]}`, want: 400},
		{name: "batch unknown key", method: "POST", path: "/at", body: `{"key":"nope","points":[[1,1,1]]}`, want: 404},
		{name: "batch overflow point", method: "POST", path: "/at", body: `{"key":"` + key + `","points":[[1,1e999,1]]}`, want: 400},
		{name: "batch too many points", method: "POST", path: "/at",
			body: `{"key":"` + key + `","points":[[1,1,1],[1,1,1],[1,1,1],[1,1,1],[1,1,1]]}`, want: 413},
		{name: "batch oversized body", method: "POST", path: "/at",
			body: `{"key":"` + key + `","points":[[1,1,1]],"pad":"` + strings.Repeat("x", 300) + `"}`, want: 413},
		{name: "batch wire truncated body", method: "POST", path: "/at", body: "REMQ\x01\x00", ct: WireContentType, want: 400},
		{name: "batch wire wrong magic", method: "POST", path: "/at",
			body: "XERT" + strings.Repeat("\x00", 12), ct: WireContentType, want: 400},
		{name: "strongest wire truncated body", method: "POST", path: "/strongest", body: "REMQ\x01\x00", ct: WireContentType, want: 400},
		{name: "strongest wire wrong magic", method: "POST", path: "/strongest",
			body: "XERT" + strings.Repeat("\x00", 12), ct: WireContentType, want: 400},
		{name: "observe ok", method: "POST", path: "/observe", body: `{"key":"` + key + `","observations":[[1,1,1,-50]]}`, want: 200},
		{name: "observe wrong method", method: "GET", path: "/observe", want: 405, allow: "POST"},
		{name: "observe truncated json", method: "POST", path: "/observe", body: `{"key":`, want: 400},
		{name: "observe missing key", method: "POST", path: "/observe", body: `{"observations":[[1,1,1,-50]]}`, want: 400},
		{name: "observe unknown key", method: "POST", path: "/observe", body: `{"key":"nope","observations":[[1,1,1,-50]]}`, want: 404},
		{name: "observe empty batch", method: "POST", path: "/observe", body: `{"key":"` + key + `","observations":[]}`, want: 400},
		{name: "observe non-finite value", method: "POST", path: "/observe",
			body: `{"key":"` + key + `","observations":[[1,1,1,1e999]]}`, want: 400},
		{name: "observe too many points", method: "POST", path: "/observe",
			body: `{"key":"` + key + `","observations":[[1,1,1,-50],[1,1,1,-50],[1,1,1,-50],[1,1,1,-50],[1,1,1,-50]]}`, want: 413},
		{name: "observe oversized body", method: "POST", path: "/observe",
			body: `{"key":"` + key + `","observations":[[1,1,1,-50]],"pad":"` + strings.Repeat("x", 300) + `"}`, want: 413},
		{name: "observe wire truncated body", method: "POST", path: "/observe", body: "REMO\x01\x00", ct: WireContentType, want: 400},
		{name: "observe wire wrong magic", method: "POST", path: "/observe",
			body: "XERT" + strings.Repeat("\x00", 12), ct: WireContentType, want: 400},
		{name: "snapshot wrong method", method: "POST", path: "/snapshot", body: "{}", want: 405, allow: "GET"},
		{name: "stats wrong method", method: "PUT", path: "/stats", body: "{}", want: 405, allow: "GET"},
		{name: "healthz wrong method", method: "POST", path: "/healthz", body: "{}", want: 405, allow: "GET"},
		{name: "version wrong method", method: "PATCH", path: "/version", body: "{}", want: 405, allow: "GET"},
		{name: "unknown path", method: "GET", path: "/nope", want: 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			if tc.ct != "" {
				req.Header.Set("Content-Type", tc.ct)
			}
			r, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if r.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, r.StatusCode, tc.want)
			}
			if tc.allow != "" {
				if got := r.Header.Get("Allow"); got != tc.allow {
					t.Fatalf("Allow %q, want %q", got, tc.allow)
				}
			}
		})
	}
}

// TestEmptyAndPartialStores pins the 503 surface: an empty store
// (nothing published) refuses every query retryably, a sharded store
// mid-first-round serves the published shards' keys but refuses the
// merged snapshot with 503 until every shard has published.
func TestEmptyAndPartialStores(t *testing.T) {
	keys := testKeys(4)
	// Explicit split: keys 0,1 → shard 0; keys 2,3 → shard 1.
	part := remshard.Explicit{Assign: map[string]int{
		keys[0]: 0, keys[1]: 0, keys[2]: 1, keys[3]: 1,
	}}
	ss, err := remshard.New(keys, remshard.Config{
		Shards: 2, Partitioner: part, Volume: testVolume(), Resolution: [3]int{8, 6, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewSharded(ss, Options{}))
	defer srv.Close()

	for _, path := range []string{
		"/at?key=" + keys[0] + "&x=1&y=1",
		"/strongest?x=1&y=1",
		"/snapshot",
		"/healthz",
	} {
		status, _, body := get(t, srv.URL+path)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("GET %s on empty store: status %d, want 503 (%s)", path, status, body)
		}
	}
	// /version and /stats answer even when empty.
	if status, _, body := get(t, srv.URL+"/version"); status != 200 || string(body) != "{\"version\":\"0.0\",\"shards\":2}\n" {
		t.Fatalf("GET /version on empty store: status %d body %q", status, body)
	}
	if status, _, _ := get(t, srv.URL+"/stats"); status != 200 {
		t.Fatalf("GET /stats on empty store: status %d", status)
	}

	// Publish shard 0 only: its keys serve, shard 1's still 503, and
	// the merged snapshot (and healthz) stay 503 — partial, retryable.
	if _, err := ss.Rebuild([]int{0, 1}, testPredict, rem.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := get(t, srv.URL+"/at?key="+keys[0]+"&x=1&y=1"); status != 200 {
		t.Fatalf("published shard's key: status %d, want 200", status)
	}
	if status, _, _ := get(t, srv.URL+"/at?key="+keys[2]+"&x=1&y=1"); status != http.StatusServiceUnavailable {
		t.Fatalf("unpublished shard's key: status %d, want 503", status)
	}
	status, _, body := get(t, srv.URL+"/snapshot")
	if status != http.StatusServiceUnavailable || !strings.Contains(string(body), "pending") {
		t.Fatalf("partial store snapshot: status %d body %q, want 503 + pending", status, body)
	}
	// A partial store is "degraded", not "empty": the body names the
	// condition and counts the pending shards, so the probe distinguishes
	// a store mid-first-round from one that has never published.
	if status, _, body := get(t, srv.URL+"/healthz"); status != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), `"degraded"`) || !strings.Contains(string(body), `"pending_shards":1`) {
		t.Fatalf("partial store healthz: status %d body %q, want 503 degraded with pending_shards", status, body)
	}

	// Complete the first round: everything serves.
	if _, err := ss.Rebuild([]int{2, 3}, testPredict, rem.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if status, _, body := get(t, srv.URL+"/healthz"); status != 200 || !strings.Contains(string(body), `"serving"`) {
		t.Fatalf("complete store healthz: status %d body %q", status, body)
	}
	if status, _, _ := get(t, srv.URL+"/snapshot"); status != 200 {
		t.Fatalf("complete store snapshot: status %d", status)
	}
}

// TestUnknownKeySentinel pins the error-routing contract the 404
// mapping rests on, at both store layers.
func TestUnknownKeySentinel(t *testing.T) {
	ss, mono, _ := newServedShards(t, 3, 2)
	if _, _, err := ss.At("nope", testPoints()[0]); !errors.Is(err, rem.ErrUnknownKey) {
		t.Fatalf("sharded unknown key error %v does not wrap rem.ErrUnknownKey", err)
	}
	st := remstore.New(0)
	if _, err := st.Publish(mono, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.At("nope", testPoints()[0]); !errors.Is(err, rem.ErrUnknownKey) {
		t.Fatalf("store unknown key error %v does not wrap rem.ErrUnknownKey", err)
	}
}
