package remserve

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/rem"
)

// Binary batch wire format: the compact alternative to the JSON bodies
// on the query hot path, negotiated per request — Content-Type selects
// the request codec on POST /at, Accept selects the response codec on
// POST /at, GET /at and GET /strongest. It exists because BENCH_rem.json
// showed ~7× of the HTTP batch cost was float text codec work
// (JSON-grammar validation + ParseFloat on ingest, shortest-round-trip
// AppendFloat on egress); here a coordinate is 8 bytes of IEEE-754 moved
// verbatim, so the wire cost collapses to header validation plus memory
// traffic and the handler decodes straight into the pooled buffer that
// feeds AtBatchInto.
//
// The dialect is the snapshot codec's (rem/codec.go, via the exported
// rem wire primitives): little-endian integers, float64 as raw IEEE-754
// bits (NaN payloads survive — binary responses carry exactly the bits
// the library computed, where JSON must degrade non-finite values to
// null), a 4-byte magic and a u32 format version first. Three message
// kinds, told apart by magic:
//
//	batch request ("REMQ"), the POST /at body:
//	  magic "REMQ" | u32 version (1) | u32 key length | u32 point count
//	  key bytes | count × 3 × f64 (x y z)
//
//	batch response ("REMA"), POST /at with Accept: application/x-rem-batch:
//	  magic "REMA" | u32 version (1) | u64 snapshot version
//	  u32 value count | count × f64
//
//	keyed response ("REMS"), GET /at and GET /strongest with the same
//	Accept — the key is echoed (for /at) or announced (for /strongest):
//	  magic "REMS" | u32 version (1) | u64 snapshot version
//	  u32 key length | key bytes | f64 value
//
//	strongest-batch response ("REMW"), POST /strongest with the same
//	Accept — one winning (key, value) pair per request point; the
//	request is a "REMQ" message whose key length is 0:
//	  magic "REMW" | u32 version (1) | u64 snapshot version
//	  u32 pair count | count × (u32 key length | key bytes | f64 value)
//
// Every field is validated before any allocation: bad magic, an
// unsupported version, a truncated header, a key over the snapshot
// codec's key bound, a non-finite coordinate, or a declared size that
// disagrees with the body length is a 400; point counts over
// MaxBatchPoints are a 413 like their JSON equivalents. Rule 8 extends
// to this wire: the value block of a binary response holds bit-for-bit
// the float64s AtBatchInto writes, which is also exactly what the JSON
// path renders (pinned by TestWireRule8AcrossFormats).

// WireContentType is the media type of every binary wire message, for
// both Content-Type (request codec) and Accept (response codec).
const WireContentType = "application/x-rem-batch"

// Wire magics (little-endian u32 of the 4 ASCII bytes, in the snapshot
// codec's magic-first convention).
const (
	wireMagicReq       = "REMQ"
	wireMagicBatch     = "REMA"
	wireMagicKeyed     = "REMS"
	wireMagicStrongest = "REMW"
)

// wireVersion is the binary wire format version.
const wireVersion = 1

// wireReqHeaderLen is the fixed prefix of a batch request: magic,
// version, key length, point count.
const wireReqHeaderLen = 4 + 4 + 4 + 4

// wirePointLen is one coordinate triple.
const wirePointLen = 3 * 8

// wireError carries the HTTP status a malformed binary body maps to.
type wireError struct {
	status int
	msg    string
}

func (e *wireError) Error() string { return e.msg }

func wireErrorf(status int, format string, args ...any) *wireError {
	return &wireError{status: status, msg: fmt.Sprintf(format, args...)}
}

// decodeWireBatch parses a "REMQ" batch request into the pooled request
// buffers: the key is memoised on bb (steady-state requests for the
// same key allocate nothing) and the coordinates are decoded directly
// into bb.pts — no intermediate representation, no text. maxPoints
// mirrors the JSON path's batch cap. allowEmptyKey admits a zero-length
// key — the POST /strongest form, where the query spans the whole
// vocabulary and the key field is vestigial.
func decodeWireBatch(body []byte, bb *buffers, maxPoints int, allowEmptyKey bool) error {
	if len(body) < wireReqHeaderLen {
		return wireErrorf(400, "remserve: binary batch header truncated: %d bytes, need %d", len(body), wireReqHeaderLen)
	}
	if string(body[:4]) != wireMagicReq {
		return wireErrorf(400, "remserve: bad binary batch magic %q", body[:4])
	}
	if v := rem.U32(body[4:]); v != wireVersion {
		return wireErrorf(400, "remserve: unsupported binary wire version %d (want %d)", v, wireVersion)
	}
	keyLen := rem.U32(body[8:])
	count := rem.U32(body[12:])
	minKey := uint32(1)
	if allowEmptyKey {
		minKey = 0
	}
	if keyLen < minKey || keyLen > rem.WireMaxKeyLen {
		return wireErrorf(400, "remserve: binary batch key length %d outside [%d, %d]", keyLen, minKey, rem.WireMaxKeyLen)
	}
	// Declared sizes must agree with the body exactly, checked before the
	// point cap so an overflowed count is reported as the malformed body
	// it is (400), not an over-budget batch (413). The arithmetic is
	// uint64 so a hostile count cannot wrap a native int and slip past.
	want := uint64(wireReqHeaderLen) + uint64(keyLen) + uint64(count)*wirePointLen
	if want != uint64(len(body)) {
		return wireErrorf(400, "remserve: binary batch declares %d bytes, body has %d", want, len(body))
	}
	if int(count) > maxPoints {
		return wireErrorf(413, "remserve: binary batch of %d points exceeds the %d-point cap", count, maxPoints)
	}
	kb := body[wireReqHeaderLen : wireReqHeaderLen+keyLen]
	if bb.wireKey != string(kb) {
		// The copy detaches the key from the pooled body buffer; the memo
		// makes it a once-per-key-change cost, not a per-request one.
		bb.wireKey = string(kb)
	}
	bb.req.Key = bb.wireKey
	if cap(bb.pts) < int(count) {
		bb.pts = make([]geom.Vec3, 0, count)
	}
	bb.pts = bb.pts[:count]
	off := wireReqHeaderLen + int(keyLen)
	for i := range bb.pts {
		x := rem.F64(body[off:])
		y := rem.F64(body[off+8:])
		z := rem.F64(body[off+16:])
		if !finite(x) || !finite(y) || !finite(z) {
			return wireErrorf(400, "remserve: binary batch point %d is not finite", i)
		}
		bb.pts[i] = geom.Vec3{X: x, Y: y, Z: z}
		off += wirePointLen
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// appendWireBatchResponse renders a "REMA" batch response: the snapshot
// version and the raw value bits, straight from the pooled workspace
// AtBatchInto filled.
func appendWireBatchResponse(b []byte, version uint64, vals []float64) []byte {
	b = append(b, wireMagicBatch...)
	b = rem.AppendU32(b, wireVersion)
	b = rem.AppendU64(b, version)
	b = rem.AppendU32(b, uint32(len(vals)))
	for _, v := range vals {
		b = rem.AppendF64(b, v)
	}
	return b
}

// appendWireKeyedResponse renders a "REMS" single-value response for
// the GET endpoints.
func appendWireKeyedResponse(b []byte, version uint64, key string, val float64) []byte {
	b = append(b, wireMagicKeyed...)
	b = rem.AppendU32(b, wireVersion)
	b = rem.AppendU64(b, version)
	b = rem.AppendU32(b, uint32(len(key)))
	b = append(b, key...)
	b = rem.AppendF64(b, val)
	return b
}

// appendWireStrongestResponse renders a "REMW" strongest-batch
// response: one (key, value) pair per request point, keys and raw value
// bits straight from the pooled workspace StrongestBatchInto filled.
func appendWireStrongestResponse(b []byte, version uint64, keys []string, vals []float64) []byte {
	b = append(b, wireMagicStrongest...)
	b = rem.AppendU32(b, wireVersion)
	b = rem.AppendU64(b, version)
	b = rem.AppendU32(b, uint32(len(keys)))
	for i, k := range keys {
		b = rem.AppendU32(b, uint32(len(k)))
		b = append(b, k...)
		b = rem.AppendF64(b, vals[i])
	}
	return b
}

// AppendStrongestRequest appends the binary wire encoding of a
// strongest batch query — a "REMQ" message with a zero-length key —
// the client-side counterpart of POST /strongest's binary decoder.
func AppendStrongestRequest(b []byte, pts []geom.Vec3) []byte {
	return AppendBatchRequest(b, "", pts)
}

// DecodeStrongestResponse parses a "REMW" binary strongest-batch
// response into per-point winning keys and values plus the serving
// snapshot version.
func DecodeStrongestResponse(body []byte) (keys []string, vals []float64, version uint64, err error) {
	const header = 4 + 4 + 8 + 4
	if len(body) < header {
		return nil, nil, 0, fmt.Errorf("remserve: binary strongest response truncated: %d bytes", len(body))
	}
	if string(body[:4]) != wireMagicStrongest {
		return nil, nil, 0, fmt.Errorf("remserve: bad binary strongest response magic %q", body[:4])
	}
	if v := rem.U32(body[4:]); v != wireVersion {
		return nil, nil, 0, fmt.Errorf("remserve: unsupported binary wire version %d", v)
	}
	version = rem.U64(body[8:])
	count := rem.U32(body[16:])
	keys = make([]string, 0, count)
	vals = make([]float64, 0, count)
	off := header
	for i := uint32(0); i < count; i++ {
		if uint64(off)+4 > uint64(len(body)) {
			return nil, nil, 0, fmt.Errorf("remserve: binary strongest response truncated at pair %d", i)
		}
		keyLen := rem.U32(body[off:])
		off += 4
		if uint64(off)+uint64(keyLen)+8 > uint64(len(body)) {
			return nil, nil, 0, fmt.Errorf("remserve: binary strongest response truncated at pair %d", i)
		}
		keys = append(keys, string(body[off:off+int(keyLen)]))
		off += int(keyLen)
		vals = append(vals, rem.F64(body[off:]))
		off += 8
	}
	if off != len(body) {
		return nil, nil, 0, fmt.Errorf("remserve: binary strongest response has %d trailing bytes", len(body)-off)
	}
	return keys, vals, version, nil
}

// AppendBatchRequest appends the binary wire encoding of a batch query
// for key over pts — the client-side counterpart of the server decoder,
// exported for remgen's client mode, the examples and the tests.
func AppendBatchRequest(b []byte, key string, pts []geom.Vec3) []byte {
	b = append(b, wireMagicReq...)
	b = rem.AppendU32(b, wireVersion)
	b = rem.AppendU32(b, uint32(len(key)))
	b = rem.AppendU32(b, uint32(len(pts)))
	b = append(b, key...)
	for _, p := range pts {
		b = rem.AppendF64(b, p.X)
		b = rem.AppendF64(b, p.Y)
		b = rem.AppendF64(b, p.Z)
	}
	return b
}

// DecodeBatchResponse parses a "REMA" binary batch response into the
// value block and the serving snapshot version.
func DecodeBatchResponse(body []byte) (vals []float64, version uint64, err error) {
	const header = 4 + 4 + 8 + 4
	if len(body) < header {
		return nil, 0, fmt.Errorf("remserve: binary batch response truncated: %d bytes", len(body))
	}
	if string(body[:4]) != wireMagicBatch {
		return nil, 0, fmt.Errorf("remserve: bad binary batch response magic %q", body[:4])
	}
	if v := rem.U32(body[4:]); v != wireVersion {
		return nil, 0, fmt.Errorf("remserve: unsupported binary wire version %d", v)
	}
	version = rem.U64(body[8:])
	count := rem.U32(body[16:])
	if uint64(header)+uint64(count)*8 != uint64(len(body)) {
		return nil, 0, fmt.Errorf("remserve: binary batch response declares %d values, body has %d bytes", count, len(body))
	}
	vals = make([]float64, count)
	for i := range vals {
		vals[i] = rem.F64(body[header+8*i:])
	}
	return vals, version, nil
}

// DecodeKeyedResponse parses a "REMS" binary single-value response.
func DecodeKeyedResponse(body []byte) (key string, val float64, version uint64, err error) {
	const header = 4 + 4 + 8 + 4
	if len(body) < header {
		return "", 0, 0, fmt.Errorf("remserve: binary keyed response truncated: %d bytes", len(body))
	}
	if string(body[:4]) != wireMagicKeyed {
		return "", 0, 0, fmt.Errorf("remserve: bad binary keyed response magic %q", body[:4])
	}
	if v := rem.U32(body[4:]); v != wireVersion {
		return "", 0, 0, fmt.Errorf("remserve: unsupported binary wire version %d", v)
	}
	version = rem.U64(body[8:])
	keyLen := rem.U32(body[16:])
	if uint64(header)+uint64(keyLen)+8 != uint64(len(body)) {
		return "", 0, 0, fmt.Errorf("remserve: binary keyed response declares a %d-byte key, body has %d bytes", keyLen, len(body))
	}
	key = string(body[header : header+int(keyLen)])
	val = rem.F64(body[header+int(keyLen):])
	return key, val, version, nil
}

// isWireContentType reports whether a Content-Type header names the
// binary wire media type (parameters ignored, per RFC 9110 media-type
// matching; allocation-free).
func isWireContentType(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == WireContentType
}

// acceptsWire reports whether an Accept header asks for the binary wire
// media type. JSON stays the default for everything else — absent
// headers, */*, application/json — so existing clients are untouched;
// only an explicit application/x-rem-batch member (with a non-zero q)
// switches the response codec. The scan is allocation-free.
func acceptsWire(accept string) bool {
	for accept != "" {
		var elem string
		if i := strings.IndexByte(accept, ','); i >= 0 {
			elem, accept = accept[:i], accept[i+1:]
		} else {
			elem, accept = accept, ""
		}
		media := elem
		if i := strings.IndexByte(elem, ';'); i >= 0 {
			media = elem[:i]
		}
		if strings.TrimSpace(media) != WireContentType {
			continue
		}
		return !refusedByQ(elem)
	}
	return false
}

// refusedByQ reports whether an Accept element carries q=0 (the RFC 9110
// "not acceptable" marker).
func refusedByQ(elem string) bool {
	rest := elem
	if i := strings.IndexByte(rest, ';'); i >= 0 {
		rest = rest[i+1:]
	} else {
		return false
	}
	for rest != "" {
		var param string
		if i := strings.IndexByte(rest, ';'); i >= 0 {
			param, rest = rest[:i], rest[i+1:]
		} else {
			param, rest = rest, ""
		}
		param = strings.TrimSpace(param)
		if v, ok := strings.CutPrefix(param, "q="); ok {
			return v == "0" || v == "0." || v == "0.0" || v == "0.00" || v == "0.000"
		}
	}
	return false
}
