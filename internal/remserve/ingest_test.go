package remserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/remwal"
)

// ingestServer builds a served sharded store with POST /observe wired
// to a fresh queue (no WAL unless log is non-nil).
func ingestServer(t *testing.T, qc remwal.QueueConfig, token string) (*httptest.Server, *remwal.Queue) {
	t.Helper()
	ss, _, _ := newServedShards(t, 4, 2)
	q := remwal.NewQueue(qc)
	t.Cleanup(q.Close)
	srv := httptest.NewServer(NewSharded(ss, Options{Ingest: IngestOptions{Queue: q, Token: token}}))
	t.Cleanup(srv.Close)
	return srv, q
}

func postObserve(t *testing.T, url, contentType, token string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/observe", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestObserveJSONAccepted(t *testing.T) {
	srv, q := ingestServer(t, remwal.QueueConfig{Capacity: 4}, "")
	body := []byte(`{"key":"aa:00","observations":[[1,2,0.5,-48],[2,1,1.5,-55]]}`)
	resp := postObserve(t, srv.URL, "", "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ack struct {
		Accepted int    `json:"accepted"`
		Seq      uint64 `json:"seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 2 {
		t.Fatalf("accepted %d, want 2", ack.Accepted)
	}
	b, err := q.Pop(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	want := remwal.Batch{
		Key:    "aa:00",
		Points: []geom.Vec3{geom.V(1, 2, 0.5), geom.V(2, 1, 1.5)},
		Values: []float64{-48, -55},
	}
	if !reflect.DeepEqual(b, want) {
		t.Fatalf("queued batch %+v, want %+v", b, want)
	}
}

// TestObserveCodecsAreCanonical pins that a batch posted as JSON and
// the same batch posted as REMO leave byte-identical WAL records —
// replay is independent of the wire the observations arrived on.
func TestObserveCodecsAreCanonical(t *testing.T) {
	dir := t.TempDir()
	l, _, err := remwal.Open(remwal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv, q := ingestServer(t, remwal.QueueConfig{Capacity: 4, Log: l}, "")

	batch := remwal.Batch{
		Key:    "aa:00",
		Points: []geom.Vec3{geom.V(1, 2, 0.5), geom.V(2, 1, 1.5)},
		Values: []float64{-48.25, -55},
	}
	jsonBody := []byte(`{"key":"aa:00","observations":[[1,2,0.5,-48.25],[2,1,1.5,-55]]}`)
	if resp := postObserve(t, srv.URL, "", "", jsonBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("json status %d", resp.StatusCode)
	}
	if resp := postObserve(t, srv.URL, WireContentType, "", remwal.AppendBatch(nil, batch)); resp.StatusCode != http.StatusOK {
		t.Fatalf("wire status %d", resp.StatusCode)
	}
	q.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err := remwal.Open(remwal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d WAL records, want 2", len(recs))
	}
	if !bytes.Equal(recs[0].Payload, recs[1].Payload) {
		t.Fatalf("JSON and REMO submissions persisted different bytes:\n%x\n%x",
			recs[0].Payload, recs[1].Payload)
	}
}

func TestObserveAuth(t *testing.T) {
	srv, _ := ingestServer(t, remwal.QueueConfig{Capacity: 4}, "sekrit")
	body := []byte(`{"key":"aa:00","observations":[[1,2,0.5,-48]]}`)
	for _, tc := range []struct {
		name, token string
		want        int
	}{
		{"missing", "", http.StatusUnauthorized},
		{"wrong", "guess", http.StatusUnauthorized},
		{"right", "sekrit", http.StatusOK},
	} {
		resp := postObserve(t, srv.URL, "", tc.token, body)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s token: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
		if tc.want == http.StatusUnauthorized && resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatalf("%s token: missing WWW-Authenticate", tc.name)
		}
	}
}

func TestObserveDisabledIs404(t *testing.T) {
	ss, _, _ := newServedShards(t, 4, 2)
	srv := httptest.NewServer(NewSharded(ss, Options{}))
	defer srv.Close()
	resp := postObserve(t, srv.URL, "", "", []byte(`{"key":"aa:00","observations":[[1,2,0.5,-48]]}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestObserveQueueFullRetryAfter mirrors the rate-limiter tests: a
// deterministic clock drives the drain-rate estimate the 429 carries.
func TestObserveQueueFullRetryAfter(t *testing.T) {
	clk := struct {
		t time.Time
	}{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	srv, q := ingestServer(t, remwal.QueueConfig{Capacity: 1, Now: func() time.Time { return clk.t }}, "")
	body := []byte(`{"key":"aa:00","observations":[[1,2,0.5,-48]]}`)

	// Fill the queue; no drain history yet → the 1-second floor.
	if resp := postObserve(t, srv.URL, "", "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("fill status %d", resp.StatusCode)
	}
	resp := postObserve(t, srv.URL, "", "", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("cold Retry-After %q, want 1", got)
	}

	// Establish a 4s drain rhythm, refill, and expect the projection.
	if _, err := q.Pop(t.Context()); err != nil {
		t.Fatal(err)
	}
	if resp := postObserve(t, srv.URL, "", "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("refill status %d", resp.StatusCode)
	}
	clk.t = clk.t.Add(4 * time.Second)
	if _, err := q.Pop(t.Context()); err != nil {
		t.Fatal(err)
	}
	if resp := postObserve(t, srv.URL, "", "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("second refill status %d", resp.StatusCode)
	}
	resp = postObserve(t, srv.URL, "", "", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rhythm full status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Fatalf("rhythm Retry-After %q, want 4", got)
	}
}

func TestObservePipelineDownIs503(t *testing.T) {
	srv, q := ingestServer(t, remwal.QueueConfig{Capacity: 4}, "")
	q.Close()
	resp := postObserve(t, srv.URL, "", "", []byte(`{"key":"aa:00","observations":[[1,2,0.5,-48]]}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func TestObservePointCap(t *testing.T) {
	ss, _, _ := newServedShards(t, 4, 2)
	q := remwal.NewQueue(remwal.QueueConfig{Capacity: 4})
	defer q.Close()
	srv := httptest.NewServer(NewSharded(ss, Options{
		MaxBatchPoints: 3,
		Ingest:         IngestOptions{Queue: q},
	}))
	defer srv.Close()

	var sb strings.Builder
	sb.WriteString(`{"key":"aa:00","observations":[`)
	for i := 0; i < 4; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(`[1,2,0.5,-48]`)
	}
	sb.WriteString(`]}`)
	resp := postObserve(t, srv.URL, "", "", []byte(sb.String()))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("json status %d, want 413", resp.StatusCode)
	}
	wire := remwal.AppendBatch(nil, remwal.Batch{
		Key:    "aa:00",
		Points: make([]geom.Vec3, 4),
		Values: make([]float64, 4),
	})
	resp = postObserve(t, srv.URL, WireContentType, "", wire)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("wire status %d, want 413", resp.StatusCode)
	}
}

// TestObserveFastPathMatchesEncodingJSON pins the fast-path scanner
// against the generic decoder over accept and reject cases.
func TestObserveFastPathMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		`{"key":"aa:00","observations":[[1,2,0.5,-48]]}`,
		`{ "key" : "aa:00" , "observations" : [ [1,2,3,4] , [5,6,7,8] ] }`,
		`{"observations":[[1,2,3,4]],"key":"aa:00"}`,
		`{"key":"aa:00","observations":[]}`,
		`{"key":"","observations":[[1,2,3,4]]}`,
		`{"key":"aa:00","observations":[[1,2,3]]}`,
		`{"key":"aa:00","observations":[[1,2,3,4,5]]}`,
		`{"key":"aa:00","observations":[[1,2,3,"x"]]}`,
		`{"key":"aa:00"}`,
		`{"key":"aa:00","observations":[[1e2,-2.5E-1,0.5,-4.8e1]]}`,
		`{"key":"é","observations":[[1,2,3,4]]}`,
		`{}`,
		`[]`,
		`{"key":"aa:00","observations":[[1,2,3,4]]} trailing`,
		`{"key":"aa:00","key":"bb:11","observations":[[1,2,3,4]]}`,
		`{"key":"aa:00","extra":1,"observations":[[1,2,3,4]]}`,
	}
	for _, body := range cases {
		var want observeReq
		wantErr := json.Unmarshal([]byte(body), &want) != nil
		var got observeReq
		if !parseObserveFast([]byte(body), &got) {
			continue // fallback handles it — always safe
		}
		if wantErr {
			t.Fatalf("fast path accepted %q which encoding/json rejects", body)
		}
		if got.Key != want.Key || len(got.Observations) != len(want.Observations) {
			t.Fatalf("fast path mismatch on %q: got %+v want %+v", body, got, want)
		}
		for i := range got.Observations {
			if got.Observations[i] != want.Observations[i] {
				t.Fatalf("fast path row %d mismatch on %q", i, body)
			}
		}
	}
}
