package remserve

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remwal"
)

// POST /observe is the write half of the serving edge: observation
// batches enter the bounded ingest queue (remwal.Queue), which
// persists them to the write-ahead log before acknowledging — an
// accepted observation survives kill -9 and replays into the exact
// same published snapshots (determinism contract rule 10). The
// request codec is negotiated like POST /at: Content-Type
// application/x-rem-batch selects the binary "REMO" message
// (remwal.DecodeBatch), anything else the JSON shape
//
//	{"key":"aa:bb:…","observations":[[x,y,z,value],…]}
//
// parsed by a fast-path scanner with the encoding/json fallback. Both
// codecs produce the same canonical WAL bytes, so replay is
// independent of the wire the observations arrived on. The response is
// JSON: {"accepted":N,"seq":S} — S the WAL sequence number (0 when the
// queue is ephemeral).
//
// Failure surface: 401 on a bad bearer token, 404 for a key outside
// the vocabulary (or when ingest is not configured at all), 413 over
// the shared body/point caps, 429 + Retry-After when the queue is full
// (load-shedding — the drain-rate estimate, never a blocked read),
// 503 once the stream loop is down, 500 only for a WAL I/O fault.

// IngestOptions wires the write path into a Server.
type IngestOptions struct {
	// Queue is the bounded ingest queue POST /observe submits into; nil
	// leaves the server read-only (404 on /observe).
	Queue *remwal.Queue
	// Token, when non-empty, requires "Authorization: Bearer <Token>"
	// on POST /observe (constant-time comparison; 401 otherwise).
	Token string
}

// observeReq is the JSON body shape of POST /observe.
type observeReq struct {
	Key          string       `json:"key"`
	Observations [][4]float64 `json:"observations"`
}

// handleObserve serves POST /observe.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if s.ingestToken != "" {
		auth := r.Header.Get("Authorization")
		if subtle.ConstantTimeCompare([]byte(auth), []byte("Bearer "+s.ingestToken)) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="remserve"`)
			http.Error(w, "remserve: missing or invalid ingest token", http.StatusUnauthorized)
			return
		}
	}
	bb := bufPool.Get().(*buffers)
	defer func() { bufPool.Put(bb) }()
	body, ok := s.readCappedBody(w, r, bb)
	if !ok {
		return
	}
	var batch remwal.Batch
	if isWireContentType(r.Header.Get("Content-Type")) {
		var err error
		if batch, err = remwal.DecodeBatch(body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		var err *wireError
		if batch, err = parseJSONObserve(body); err != nil {
			http.Error(w, err.msg, err.status)
			return
		}
	}
	if len(batch.Points) > s.maxPoints {
		http.Error(w, "remserve: observation batch of "+strconv.Itoa(len(batch.Points))+
			" points exceeds the "+strconv.Itoa(s.maxPoints)+"-point cap", http.StatusRequestEntityTooLarge)
		return
	}
	seq, err := s.ingestQ.Submit(batch)
	if err != nil {
		observeError(w, err)
		return
	}
	b := append(bb.out[:0], `{"accepted":`...)
	b = strconv.AppendInt(b, int64(len(batch.Points)), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, "}\n"...)
	writeJSON(w, b)
	bb.out = b
}

// observeError maps a queue rejection to its status: 404 outside the
// vocabulary, 429 + Retry-After at capacity, 503 once the loop is
// down, 500 for a WAL fault, 400 for any other validation failure.
func observeError(w http.ResponseWriter, err error) {
	var full *remwal.FullError
	switch {
	case errors.As(err, &full):
		w.Header().Set("Retry-After", strconv.Itoa(full.RetryAfter))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, remwal.ErrClosed):
		http.Error(w, "remserve: ingest pipeline is down", http.StatusServiceUnavailable)
	case errors.Is(err, rem.ErrUnknownKey):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, remwal.ErrAppend):
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// parseJSONObserve decodes the JSON observe body: the fast-path
// scanner for the canonical shape, encoding/json for anything outside
// it, then the finiteness checks — mirroring parseJSONBatch. The
// returned batch owns its memory (it outlives the pooled request
// buffer inside the queue).
func parseJSONObserve(body []byte) (remwal.Batch, *wireError) {
	var req observeReq
	if !parseObserveFast(body, &req) {
		if err := json.Unmarshal(body, &req); err != nil {
			return remwal.Batch{}, wireErrorf(400, "remserve: bad observe body: %s", err.Error())
		}
	}
	if req.Key == "" {
		return remwal.Batch{}, wireErrorf(400, `remserve: observe body needs a "key"`)
	}
	if len(req.Observations) == 0 {
		return remwal.Batch{}, wireErrorf(400, "remserve: empty observation batch")
	}
	batch := remwal.Batch{
		Key:    req.Key,
		Points: make([]geom.Vec3, len(req.Observations)),
		Values: make([]float64, len(req.Observations)),
	}
	for i, o := range req.Observations {
		for _, c := range o {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return remwal.Batch{}, wireErrorf(400, "remserve: observation %d is not finite", i)
			}
		}
		batch.Points[i] = geom.V(o[0], o[1], o[2])
		batch.Values[i] = o[3]
	}
	return batch, nil
}

// parseObserveFast is parseBatchFast's 4-wide sibling for the observe
// shape {"key":"…","observations":[[x,y,z,v],…]}: ok=false falls back
// to encoding/json, and it never accepts a body the generic decoder
// would reject with a client-visible error.
func parseObserveFast(body []byte, req *observeReq) bool {
	s := batchScanner{b: body}
	if !s.expect('{') {
		return false
	}
	req.Key = ""
	req.Observations = req.Observations[:0]
	sawKey, sawObs := false, false
	if c, ok := s.peek(); ok && c == '}' {
		s.i++
	} else {
		for {
			name, ok := s.simpleString()
			if !ok || !s.expect(':') {
				return false
			}
			switch name {
			case "key":
				if sawKey {
					return false // duplicate field semantics → fallback
				}
				sawKey = true
				k, ok := s.simpleString()
				if !ok {
					return false
				}
				req.Key = k
			case "observations":
				if sawObs {
					return false
				}
				sawObs = true
				if !s.expect('[') {
					return false
				}
				if c, ok := s.peek(); ok && c == ']' {
					s.i++
					break
				}
				for {
					if !s.expect('[') {
						return false
					}
					var o [4]float64
					for d := 0; d < 4; d++ {
						v, ok := s.number()
						if !ok {
							return false
						}
						o[d] = v
						if d < 3 && !s.expect(',') {
							return false
						}
					}
					if !s.expect(']') {
						return false
					}
					req.Observations = append(req.Observations, o)
					if c, ok := s.peek(); ok && c == ',' {
						s.i++
						continue
					}
					break
				}
				if !s.expect(']') {
					return false
				}
			default:
				return false // unknown field → let encoding/json decide
			}
			if c, ok := s.peek(); ok && c == ',' {
				s.i++
				continue
			}
			break
		}
		if !s.expect('}') {
			return false
		}
	}
	s.ws()
	return s.i == len(s.b)
}
