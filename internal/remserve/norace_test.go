//go:build !race

package remserve

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
