// Package remserve is the network edge of the REM serving stack: a
// net/http front over a live snapshot store — the sharded
// remshard.ShardedStore or a plain remstore.Store — so consumers can
// query the map without linking the Go packages. The store keeps
// publishing new generations underneath it (core.RunStream, targeted
// Rebuild calls); the server never takes a lock on the query path, so a
// rebuild never blocks an HTTP response and a response never observes a
// half-published map.
//
// Endpoints:
//
//	GET  /at?key=K&x=…&y=…[&z=…]   one interpolated value for key K
//	POST /at                       batch: {"key":K,"points":[[x,y,z],…]}
//	GET  /strongest?x=…&y=…[&z=…]  best-server query across all keys
//	POST /strongest                batch: {"points":[[x,y,z],…]}
//	POST /observe                  ingest (Options.Ingest): WAL-durable
//	                               observation batches, see ingest.go
//	GET  /stats                    per-shard build/query/eviction counters
//	GET  /snapshot                 binary codec of the serving map (ETag)
//	GET  /delta?from=<tag>         tile delta since a retained generation
//	                               (full snapshot when the base is gone)
//	GET  /healthz                  200 serving / 503 empty or degraded,
//	                               version + shards (+ pending count)
//	GET  /version                  serving version tag + shard count
//
// Every successful query response carries the serving snapshot version
// (the JSON "version" field; the dotted per-shard tag on /snapshot,
// /healthz and /version), so clients can detect generation swaps.
// /snapshot sets a strong ETag derived from the serving versions and
// honours If-None-Match — an unchanged map costs one header exchange.
//
// Determinism contract rule 8 extends over the wire: the bytes served
// by /at, /strongest, /stats and /snapshot are exactly what the direct
// library calls return (for /snapshot, byte-identical to
// Map.WriteTo of the same serving generation), for any partitioner and
// shard count, under concurrent rebuilds. The hot handlers allocate
// nothing after warm-up: request parsing works on the raw query string,
// and response bodies are assembled in pooled buffers.
package remserve

import (
	"context"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remobs"
	"repro/internal/remshard"
	"repro/internal/remstore"
	"repro/internal/remwal"
)

// ErrEmpty is what queries return before the backing store has
// published — re-exported so HTTP callers need not import remstore.
var ErrEmpty = remstore.ErrEmpty

// Backend is the serving surface the HTTP layer fronts. Both store
// flavours satisfy it (StoreBackend, ShardedBackend); all methods must
// be safe for arbitrary concurrency with each other and with rebuilds,
// which the stores guarantee.
type Backend interface {
	// At answers a point query for one key; the version is the serving
	// snapshot generation of the store (or owning shard) that answered.
	At(key string, p geom.Vec3) (float64, uint64, error)
	// AtBatchInto answers a multi-point query for one key into a
	// caller-owned buffer; len(dst) must equal len(pts).
	AtBatchInto(dst []float64, key string, pts []geom.Vec3) (uint64, error)
	// Strongest answers a best-server query across the vocabulary.
	Strongest(p geom.Vec3) (string, float64, uint64, error)
	// StrongestBatchInto answers a best-server query for every point into
	// caller-owned buffers; len(keys) and len(vals) must equal len(pts).
	// The version is the serving snapshot generation for a monolithic
	// store and 0 for a sharded one (a batch may span shard snapshots; the
	// per-point answers still match the monolithic store bit for bit —
	// rule 8 — only the single version tag has no sharded equivalent).
	StrongestBatchInto(keys []string, vals []float64, pts []geom.Vec3) (uint64, error)
	// Snapshot returns the serving map and its version tag (the ETag
	// body): the snapshot version for a monolithic store, the dotted
	// per-shard version vector for a sharded one. The tag uniquely
	// identifies the returned bytes.
	Snapshot() (*rem.Map, string, error)
	// SnapshotAt resolves a historical generation by its version tag —
	// the delta-base lookup behind GET /delta. ok=false means the
	// generation is no longer retained (or the tag never named one), and
	// the server falls back to a full snapshot.
	SnapshotAt(tag string) (*rem.Map, bool)
	// Stats returns the normalised aggregate view.
	Stats() Stats
}

// Stats is the backend-neutral aggregate the /stats, /healthz and
// /version endpoints serve. PerShard holds one remstore.Stats per shard
// (exactly one for a monolithic store), so per-shard publish, query and
// eviction counters and serving snapshot versions are always visible.
type Stats struct {
	// Serving is true once every shard that owns keys has published.
	Serving bool `json:"serving"`
	// Shards is the shard count (1 for a monolithic store).
	Shards int `json:"shards"`
	// Version is the dotted per-shard serving-version tag ("0" entries
	// for shards that have not published).
	Version string `json:"version"`
	// Rounds counts sharded rebuild rounds (0 for a monolithic store).
	Rounds uint64 `json:"rounds"`
	// Queries counts logical queries — one per At/Strongest, one per
	// point of a batch — the monolithic-equivalent figure (rule 8).
	Queries uint64 `json:"queries"`
	// Publishes sums snapshot publishes across shards.
	Publishes uint64 `json:"publishes"`
	// Evictions sums retention evictions across shards.
	Evictions uint64 `json:"evictions"`
	// PendingShards counts key-owning shards that have not published yet
	// (0 once serving). /healthz names the store "degraded" — not merely
	// "empty" — when some but not all shards are pending.
	PendingShards int `json:"pending_shards"`
	// PerShard is each shard store's own counters, indexed by shard.
	PerShard []remstore.Stats `json:"per_shard"`
}

// versionTag renders the serving versions as the dotted tag used by
// ETags, /healthz and /version: "7" monolithic, "3.1.2.4" sharded.
func versionTag(versions []uint64) string {
	b := make([]byte, 0, 4*len(versions))
	for i, v := range versions {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendUint(b, v, 10)
	}
	return string(b)
}

// parseVersionTag inverts versionTag: a dotted tag back into a version
// vector, or ok=false for anything malformed (a client-supplied tag is
// untrusted input).
func parseVersionTag(tag string) ([]uint64, bool) {
	var versions []uint64
	for len(tag) > 0 {
		part := tag
		if i := strings.IndexByte(tag, '.'); i >= 0 {
			part, tag = tag[:i], tag[i+1:]
		} else {
			tag = ""
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, false
		}
		versions = append(versions, v)
	}
	return versions, len(versions) > 0
}

// storeBackend fronts one monolithic remstore.Store.
type storeBackend struct{ st *remstore.Store }

// StoreBackend adapts a monolithic snapshot store to the serving
// surface.
func StoreBackend(st *remstore.Store) Backend { return storeBackend{st} }

func (b storeBackend) At(key string, p geom.Vec3) (float64, uint64, error) {
	return b.st.At(key, p)
}

func (b storeBackend) AtBatchInto(dst []float64, key string, pts []geom.Vec3) (uint64, error) {
	return b.st.AtBatchInto(dst, key, pts)
}

func (b storeBackend) Strongest(p geom.Vec3) (string, float64, uint64, error) {
	return b.st.Strongest(p)
}

func (b storeBackend) StrongestBatchInto(keys []string, vals []float64, pts []geom.Vec3) (uint64, error) {
	return b.st.StrongestBatchInto(keys, vals, pts)
}

func (b storeBackend) Snapshot() (*rem.Map, string, error) {
	s := b.st.Current()
	if s == nil {
		return nil, "", ErrEmpty
	}
	return s.Map(), strconv.FormatUint(s.Version(), 10), nil
}

func (b storeBackend) SnapshotAt(tag string) (*rem.Map, bool) {
	versions, ok := parseVersionTag(tag)
	if !ok || len(versions) != 1 {
		return nil, false
	}
	s := b.st.SnapshotAt(versions[0])
	if s == nil {
		return nil, false
	}
	return s.Map(), true
}

func (b storeBackend) Stats() Stats {
	st := b.st.Stats()
	out := Stats{
		Serving:   st.CurrentVersion > 0,
		Shards:    1,
		Version:   versionTag([]uint64{st.CurrentVersion}),
		Queries:   st.Queries,
		Publishes: st.Publishes,
		Evictions: st.Evictions,
		PerShard:  []remstore.Stats{st},
	}
	if !out.Serving {
		out.PendingShards = 1
	}
	return out
}

// shardedBackend fronts a remshard.ShardedStore.
type shardedBackend struct{ ss *remshard.ShardedStore }

// ShardedBackend adapts a sharded store to the serving surface.
func ShardedBackend(ss *remshard.ShardedStore) Backend { return shardedBackend{ss} }

func (b shardedBackend) At(key string, p geom.Vec3) (float64, uint64, error) {
	return b.ss.At(key, p)
}

func (b shardedBackend) AtBatchInto(dst []float64, key string, pts []geom.Vec3) (uint64, error) {
	return b.ss.AtBatchInto(dst, key, pts)
}

func (b shardedBackend) Strongest(p geom.Vec3) (string, float64, uint64, error) {
	return b.ss.Strongest(p)
}

func (b shardedBackend) StrongestBatchInto(keys []string, vals []float64, pts []geom.Vec3) (uint64, error) {
	// A sharded batch may merge answers from different shard snapshots;
	// there is no single serving version to report, so the tag is 0.
	return 0, b.ss.StrongestBatchInto(keys, vals, pts)
}

func (b shardedBackend) Snapshot() (*rem.Map, string, error) {
	m, versions, err := b.ss.MergedSnapshotVersions()
	if err != nil {
		return nil, "", err
	}
	return m, versionTag(versions), nil
}

func (b shardedBackend) SnapshotAt(tag string) (*rem.Map, bool) {
	versions, ok := parseVersionTag(tag)
	if !ok || len(versions) != b.ss.NumShards() {
		return nil, false
	}
	return b.ss.MergedSnapshotAt(versions)
}

func (b shardedBackend) Stats() Stats {
	st := b.ss.Stats()
	out := Stats{
		Serving:  true,
		Shards:   st.Shards,
		Rounds:   st.Rounds,
		Queries:  st.Queries,
		PerShard: st.PerShard,
	}
	versions := make([]uint64, st.Shards)
	for si, ps := range st.PerShard {
		versions[si] = ps.CurrentVersion
		out.Publishes += ps.Publishes
		out.Evictions += ps.Evictions
		if ps.CurrentVersion == 0 && b.ss.ShardLen(si) > 0 {
			out.Serving = false
			out.PendingShards++
		}
	}
	out.Version = versionTag(versions)
	return out
}

const (
	// DefaultMaxBatchBytes caps a POST /at body; larger bodies get 413.
	DefaultMaxBatchBytes = 1 << 20
	// DefaultMaxBatchPoints caps the points of one batch; larger
	// batches get 413.
	DefaultMaxBatchPoints = 8192

	// DefaultReadHeaderTimeout bounds how long a connection may sit
	// between accept and a complete request header — the slowloris
	// guard. Every response the server assembles is small or streamed
	// from an immutable snapshot, so generous read/idle bounds cost
	// nothing while unbounded ones leak a goroutine and a connection per
	// stalled client.
	DefaultReadHeaderTimeout = 5 * time.Second
	// DefaultReadTimeout bounds reading one full request (headers and
	// body; POST /at bodies are capped at MaxBatchBytes anyway).
	DefaultReadTimeout = 30 * time.Second
	// DefaultIdleTimeout bounds how long a keep-alive connection may sit
	// idle between requests.
	DefaultIdleTimeout = 2 * time.Minute
)

// Options tunes a Server.
type Options struct {
	// MaxBatchBytes caps the POST /at request body in bytes
	// (≤ 0 means DefaultMaxBatchBytes).
	MaxBatchBytes int64
	// MaxBatchPoints caps the points of one POST /at batch
	// (≤ 0 means DefaultMaxBatchPoints).
	MaxBatchPoints int
	// RateLimit throttles per-client request rates (429 + Retry-After
	// past the budget; /healthz exempt). The zero value disables it.
	RateLimit RateLimit
	// Ingest enables POST /observe: a queue to submit into and an
	// optional bearer token. The zero value leaves the server read-only.
	Ingest IngestOptions
	// ReadHeaderTimeout, ReadTimeout and IdleTimeout harden the listener
	// against stalled and idle clients. Zero means the package default
	// (DefaultReadHeaderTimeout etc.); negative disables that bound.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	IdleTimeout       time.Duration
	// Observer attaches the observability layer: per-endpoint request
	// counters and latency histograms (split by wire codec and status
	// class) plus GET /metrics exposition of the observer's registry.
	// nil (the default) keeps the server uninstrumented — /metrics
	// answers 404 and the request path pays one pointer test.
	Observer *remobs.Observer
}

// timeoutOr resolves one Options timeout: zero → default, negative →
// disabled (0 in net/http terms).
func timeoutOr(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// Server is the HTTP front. It is an http.Handler (mount it anywhere)
// and owns an optional listener lifecycle: Serve/ListenAndServe block
// until Shutdown, which stops accepting and drains in-flight requests.
type Server struct {
	b           Backend
	maxBytes    int64
	maxPoints   int
	limiter     *limiter
	ingestQ     *remwal.Queue
	ingestToken string

	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration

	obs     *remobs.Observer
	metrics *serveMetrics

	mu   sync.Mutex
	hs   *http.Server
	addr string
}

// New builds a server over any backend.
func New(b Backend, opts Options) *Server {
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = DefaultMaxBatchBytes
	}
	if opts.MaxBatchPoints <= 0 {
		opts.MaxBatchPoints = DefaultMaxBatchPoints
	}
	s := &Server{
		b:                 b,
		maxBytes:          opts.MaxBatchBytes,
		maxPoints:         opts.MaxBatchPoints,
		limiter:           newLimiter(opts.RateLimit),
		ingestQ:           opts.Ingest.Queue,
		ingestToken:       opts.Ingest.Token,
		readHeaderTimeout: timeoutOr(opts.ReadHeaderTimeout, DefaultReadHeaderTimeout),
		readTimeout:       timeoutOr(opts.ReadTimeout, DefaultReadTimeout),
		idleTimeout:       timeoutOr(opts.IdleTimeout, DefaultIdleTimeout),
	}
	if opts.Observer != nil {
		s.obs = opts.Observer
		s.metrics = newServeMetrics(opts.Observer.Registry)
	}
	return s
}

// NewStore is New over a monolithic store.
func NewStore(st *remstore.Store, opts Options) *Server {
	return New(StoreBackend(st), opts)
}

// NewSharded is New over a sharded store.
func NewSharded(ss *remshard.ShardedStore, opts Options) *Server {
	return New(ShardedBackend(ss), opts)
}

// httpServer assembles the hardened net/http server Serve runs: the
// handler plus the configured connection-lifecycle bounds.
func (s *Server) httpServer() *http.Server {
	return &http.Server{
		Handler:           s,
		ReadHeaderTimeout: s.readHeaderTimeout,
		ReadTimeout:       s.readTimeout,
		IdleTimeout:       s.idleTimeout,
	}
}

// Serve accepts connections on l until Shutdown; a clean shutdown
// returns nil. The bound address is available via Addr from the moment
// Serve is entered.
func (s *Server) Serve(l net.Listener) error {
	hs := s.httpServer()
	s.mu.Lock()
	s.hs = hs
	s.addr = l.Addr().String()
	s.mu.Unlock()
	err := hs.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe binds addr (":0" picks a free port, see Addr) and
// serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Addr returns the bound listen address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addr
}

// Shutdown stops accepting new connections and drains in-flight
// requests, waiting up to ctx. A server that never served is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	hs := s.hs
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Shutdown(ctx)
}
