package remserve

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// fakeClock is the injectable limiter clock: tests advance it by hand,
// so refill arithmetic is exact and no test sleeps.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestLimiter(rps float64, burst, maxClients int, clk *fakeClock) *limiter {
	return newLimiter(RateLimit{RPS: rps, Burst: burst, MaxClients: maxClients, Now: clk.now})
}

// TestLimiterTokenBucket pins the bucket arithmetic: a fresh client
// spends its burst back to back, the next request is refused with the
// exact whole-second Retry-After, and refill restores one token per
// 1/RPS elapsed.
func TestLimiterTokenBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newTestLimiter(2, 3, 0, clk) // 2 tokens/s, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("10.0.0.1:1111"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.allow("10.0.0.1:1111")
	if ok {
		t.Fatal("request over burst admitted")
	}
	// Empty bucket at 2 tokens/s: one token in 0.5 s → Retry-After
	// rounds up to 1.
	if retry != 1 {
		t.Fatalf("Retry-After %d, want 1", retry)
	}

	// Half a token accrues in 0.25 s — still refused (same host, any
	// port, shares the bucket).
	clk.advance(250 * time.Millisecond)
	if ok, _ := l.allow("10.0.0.1:2222"); ok {
		t.Fatal("request admitted with only half a token refilled")
	}
	// The other half accrues by 0.5 s — exactly one request serves.
	clk.advance(250 * time.Millisecond)
	if ok, _ := l.allow("10.0.0.1:1111"); !ok {
		t.Fatal("request refused with a full token refilled")
	}
	if ok, _ := l.allow("10.0.0.1:1111"); ok {
		t.Fatal("second request admitted on one refilled token")
	}
}

// TestLimiterSharedHostBucket pins the keying: every port of one origin
// host shares a bucket; a different host gets its own.
func TestLimiterSharedHostBucket(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newTestLimiter(1, 2, 0, clk)

	if ok, _ := l.allow("10.0.0.1:1111"); !ok {
		t.Fatal("first request refused")
	}
	if ok, _ := l.allow("10.0.0.1:2222"); !ok {
		t.Fatal("second request (same host, new port) refused within burst")
	}
	if ok, _ := l.allow("10.0.0.1:3333"); ok {
		t.Fatal("third same-host request admitted over the shared burst")
	}
	if ok, _ := l.allow("10.0.0.2:1111"); !ok {
		t.Fatal("different host throttled by a stranger's bucket")
	}

	// Refill: 1 token/s, so after 1 s the first host serves exactly one
	// more request.
	clk.advance(time.Second)
	if ok, _ := l.allow("10.0.0.1:1111"); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := l.allow("10.0.0.1:1111"); ok {
		t.Fatal("second request admitted with only one token refilled")
	}
}

// TestLimiterEviction pins the map bound: the bucket map never exceeds
// MaxClients, idle (fully refilled) buckets are evicted first, and an
// evicted client re-enters with a fresh burst rather than an inherited
// debt.
func TestLimiterEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := newTestLimiter(1, 1, 2, clk)

	l.allow("10.0.0.1:1")
	l.allow("10.0.0.2:1")
	if len(l.buckets) != 2 {
		t.Fatalf("%d buckets, want 2", len(l.buckets))
	}
	// Both buckets refill within 1 s; a third client must evict rather
	// than grow the map.
	clk.advance(2 * time.Second)
	l.allow("10.0.0.3:1")
	if len(l.buckets) > 2 {
		t.Fatalf("%d buckets after eviction, want ≤ 2", len(l.buckets))
	}
	// Even mid-burst (nothing refilled), the bound holds via arbitrary
	// eviction.
	l.allow("10.0.0.4:1")
	if len(l.buckets) > 2 {
		t.Fatalf("%d buckets after mid-burst eviction, want ≤ 2", len(l.buckets))
	}
}

// TestRateLimitOverHTTP drives the limiter through the full server: a
// burst of requests from one client serves exactly Burst of them, the
// rest get 429 with a Retry-After header, /healthz stays exempt, and a
// server without RateLimit is unthrottled.
func TestRateLimitOverHTTP(t *testing.T) {
	ss, _, keys := newServedShards(t, 4, 2)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	srv := httptest.NewServer(NewSharded(ss, Options{
		RateLimit: RateLimit{RPS: 1, Burst: 3, Now: clk.now},
	}))
	defer srv.Close()

	url := srv.URL + "/at?key=" + keys[0] + "&x=1&y=1"
	var served, throttled int
	for i := 0; i < 6; i++ {
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		switch r.StatusCode {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			throttled++
			ra, err := strconv.Atoi(r.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("429 Retry-After %q, want a positive integer", r.Header.Get("Retry-After"))
			}
		default:
			t.Fatalf("status %d", r.StatusCode)
		}
	}
	if served != 3 || throttled != 3 {
		t.Fatalf("served %d / throttled %d, want 3 / 3", served, throttled)
	}

	// /healthz is exempt: readiness probes keep answering while the
	// client is throttled.
	for i := 0; i < 5; i++ {
		r, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusTooManyRequests {
			t.Fatal("/healthz throttled")
		}
	}

	// The clock refills one token per second.
	clk.advance(time.Second)
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("refilled request: status %d", r.StatusCode)
	}

	// Zero-value Options: no limiter at all.
	free := httptest.NewServer(NewSharded(ss, Options{}))
	defer free.Close()
	for i := 0; i < 20; i++ {
		r, err := http.Get(free.URL + "/at?key=" + keys[0] + "&x=1&y=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("unlimited server: status %d on request %d", r.StatusCode, i)
		}
	}
}

// TestSnapshotGzip pins the compressed download: Accept-Encoding: gzip
// answers a gzip stream whose decompressed bytes are exactly Map.WriteTo
// of the serving generation, under the same strong ETag as the identity
// encoding (If-None-Match revalidation behaves identically), with
// Vary: Accept-Encoding on every response.
func TestSnapshotGzip(t *testing.T) {
	ss, _, _ := newServedShards(t, 6, 2)
	srv := httptest.NewServer(NewSharded(ss, Options{}))
	defer srv.Close()

	// Identity download first: the reference bytes and ETag.
	status, idHdr, identity := get(t, srv.URL+"/snapshot")
	if status != http.StatusOK {
		t.Fatalf("identity GET /snapshot: status %d", status)
	}
	if idHdr.Get("Content-Encoding") != "" {
		t.Fatalf("identity response Content-Encoding %q, want none", idHdr.Get("Content-Encoding"))
	}
	if v := idHdr.Get("Vary"); v != "Accept-Encoding" {
		t.Fatalf("identity Vary %q, want Accept-Encoding", v)
	}
	etag := idHdr.Get("ETag")

	// Compressed download. Setting Accept-Encoding by hand disables Go's
	// transparent decompression, so the body is the raw gzip stream.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/snapshot", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept-Encoding", "gzip")
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	compressed, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("gzip GET /snapshot: status %d", r.StatusCode)
	}
	if ce := r.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", ce)
	}
	if v := r.Header.Get("Vary"); v != "Accept-Encoding" {
		t.Fatalf("gzip Vary %q, want Accept-Encoding", v)
	}
	if got := r.Header.Get("ETag"); got != etag {
		t.Fatalf("gzip ETag %q differs from identity %q", got, etag)
	}
	if len(compressed) >= len(identity) {
		t.Fatalf("gzip body %d bytes, identity %d — no compression happened", len(compressed), len(identity))
	}
	zr, err := gzip.NewReader(bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if err := zr.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, identity) {
		t.Fatalf("decompressed snapshot differs from identity bytes (%d vs %d)", len(plain), len(identity))
	}

	// Revalidation works identically on the compressed variant.
	req.Header.Set("If-None-Match", etag)
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("gzip revalidation: status %d, %d body bytes (want 304, 0)", r.StatusCode, len(body))
	}
}
