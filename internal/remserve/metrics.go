package remserve

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/remobs"
)

// This file is the serving tier's observability: every request is
// counted and timed per (endpoint, wire, status class) and the
// registry is exposed at GET /metrics in Prometheus text format. The
// wrapper obeys the same contract as the handlers it wraps — zero
// allocations after warm-up. Everything stringy happens once, in
// newServeMetrics: the (endpoint × wire × class) counter cube and the
// (endpoint × wire) histogram grid are pre-registered, so the per-
// request work is two array indexings, two atomic adds and a pooled
// ResponseWriter wrapper.

// Endpoint indices. epOther covers 404s and keeps the cube closed.
const (
	epAt = iota
	epStrongest
	epObserve
	epStats
	epSnapshot
	epDelta
	epHealthz
	epVersion
	epMetrics
	epOther
	numEndpoints
)

var endpointNames = [numEndpoints]string{
	"at", "strongest", "observe", "stats", "snapshot", "delta",
	"healthz", "version", "metrics", "other",
}

// endpointIndex maps a request path to its endpoint index without
// allocating (string switch).
func endpointIndex(path string) int {
	switch path {
	case "/at":
		return epAt
	case "/strongest":
		return epStrongest
	case "/observe":
		return epObserve
	case "/stats":
		return epStats
	case "/snapshot":
		return epSnapshot
	case "/delta":
		return epDelta
	case "/healthz":
		return epHealthz
	case "/version":
		return epVersion
	case "/metrics":
		return epMetrics
	default:
		return epOther
	}
}

// Wire indices: JSON is the default; "binary" covers both the REMB
// batch request codec and the REMS Accept-negotiated responses.
const (
	wireJSON = iota
	wireBinary
	numWires
)

var wireNames = [numWires]string{"json", "binary"}

// wireIndex classifies a request by the codec it speaks: a binary
// Content-Type (POST bodies) or a binary Accept (GET responses).
func wireIndex(r *http.Request) int {
	if isWireContentType(r.Header.Get("Content-Type")) || acceptsWire(r.Header.Get("Accept")) {
		return wireBinary
	}
	return wireJSON
}

// Status classes.
const (
	class2xx = iota
	class4xx
	class5xx
	classOther
	numClasses
)

var classNames = [numClasses]string{"2xx", "4xx", "5xx", "other"}

func classIndex(status int) int {
	switch {
	case status >= 200 && status < 300:
		return class2xx
	case status >= 400 && status < 500:
		return class4xx
	case status >= 500 && status < 600:
		return class5xx
	default:
		return classOther
	}
}

// serveMetrics is the pre-registered instrument set one Server owns.
type serveMetrics struct {
	reqs [numEndpoints][numWires][numClasses]*remobs.Counter
	lat  [numEndpoints][numWires]*remobs.Histogram
}

// newServeMetrics registers the full cube. Registration is idempotent
// in remobs, so a leader and a follower sharing one registry (one
// process, two Servers) share the instruments rather than colliding.
func newServeMetrics(reg *remobs.Registry) *serveMetrics {
	if reg == nil {
		return nil
	}
	m := &serveMetrics{}
	for e := 0; e < numEndpoints; e++ {
		for wi := 0; wi < numWires; wi++ {
			for c := 0; c < numClasses; c++ {
				m.reqs[e][wi][c] = reg.Counter("rem_http_requests_total",
					"HTTP requests by endpoint, wire codec and status class",
					remobs.L("endpoint", endpointNames[e]),
					remobs.L("wire", wireNames[wi]),
					remobs.L("code", classNames[c]))
			}
			m.lat[e][wi] = reg.Histogram("rem_http_request_seconds",
				"HTTP request latency by endpoint and wire codec",
				remobs.L("endpoint", endpointNames[e]),
				remobs.L("wire", wireNames[wi]))
		}
	}
	return m
}

// statusRecorder captures the response status without disturbing the
// handlers. Pooled; a handler that never calls WriteHeader implicitly
// answered 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

var srPool = sync.Pool{New: func() any { return new(statusRecorder) }}

// ServeHTTP is the instrumented entry point: it times and classifies
// every request around the routing in route (handlers.go). Without an
// Observer the wrapper is one nil check.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	if m == nil {
		s.route(w, r)
		return
	}
	start := time.Now()
	sr := srPool.Get().(*statusRecorder)
	sr.ResponseWriter, sr.status = w, 0
	s.route(sr, r)
	status := sr.status
	if status == 0 {
		status = http.StatusOK
	}
	sr.ResponseWriter = nil
	srPool.Put(sr)
	ei := endpointIndex(r.URL.Path)
	wi := wireIndex(r)
	m.reqs[ei][wi][classIndex(status)].Inc()
	m.lat[ei][wi].Observe(time.Since(start))
}

// metricsCT is the Prometheus text-format content type, installed as a
// shared slice like the other response headers.
var metricsCT = []string{"text/plain; version=0.0.4; charset=utf-8"}

// handleMetrics serves GET /metrics: the registry rendered into a
// pooled buffer (cold path — scrapes come once per interval, not per
// query).
func (s *Server) handleMetrics(w http.ResponseWriter) {
	bb := bufPool.Get().(*buffers)
	b := s.obs.Registry.AppendPrometheus(bb.out[:0])
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		h["Content-Type"] = metricsCT
	}
	w.Write(b)
	bb.out = b
	bufPool.Put(bb)
}
