package remserve

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/simrand"
)

// TestBatchParseMatchesEncodingJSON pins the fast path's contract:
// whenever parseBatchFast accepts a body, its result is exactly what
// encoding/json produces; whenever it declines, the caller's fallback
// handles the body, so behaviour never diverges.
func TestBatchParseMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		`{"key":"AA:BB","points":[[1,2,3]]}`,
		`{"key":"AA:BB","points":[]}`,
		`{"key":"AA:BB","points":[[1.5e2,-2.25,3e-1],[0,0,0]]}`,
		`{ "points" : [ [ 1 , 2 , 3 ] ] , "key" : "k" }`,
		`{"key":"","points":[[1,2,3]]}`,
		`{}`,
		`{"key":"k"}`,
		`{"points":[[1,2,3],[4,5,6],[7,8,9]]}`,
		"{\n\t\"key\": \"k\",\n\t\"points\": [[1, 2, 3]]\n}",
		`{"key":"k","points":[[-0.0,1e10,2.5]]}`,
	}
	// Random well-formed bodies widen the sweep.
	rng := simrand.New(7)
	for n := 0; n < 40; n++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, `{"key":"%02x:%02x","points":[`, rng.Intn(256), rng.Intn(256))
		np := rng.Intn(6)
		for i := 0; i < np; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "[%g,%g,%g]", rng.Range(-10, 10), rng.Range(-10, 10), rng.Range(-10, 10))
		}
		sb.WriteString("]}")
		cases = append(cases, sb.String())
	}
	for _, body := range cases {
		var fast, generic batchReq
		ok := parseBatchFast([]byte(body), &fast)
		if !ok {
			t.Errorf("fast path declined well-formed body %q", body)
			continue
		}
		if err := json.Unmarshal([]byte(body), &generic); err != nil {
			t.Fatalf("reference decode of %q: %v", body, err)
		}
		if fast.Key != generic.Key || len(fast.Points) != len(generic.Points) {
			t.Errorf("fast %+v vs generic %+v for %q", fast, generic, body)
			continue
		}
		for i := range fast.Points {
			for d := 0; d < 3; d++ {
				if math.Float64bits(fast.Points[i][d]) != math.Float64bits(generic.Points[i][d]) {
					t.Errorf("point %d axis %d: fast %v vs generic %v for %q", i, d, fast.Points[i][d], generic.Points[i][d], body)
				}
			}
		}
	}
}

// TestBatchParseDeclines pins that the fast path never silently accepts
// what encoding/json would reject or decode differently — every body
// outside the strict subset is declined, not mangled.
func TestBatchParseDeclines(t *testing.T) {
	declined := []string{
		``,
		`[]`,
		`{`,
		`{"key":`,
		`{"key":"k","points":[[1,2,3]]`,
		`{"key":"k","points":[[1,2,3]],}`,
		`{"key":"k","points":[[1,2]]}`,         // 2-element point
		`{"key":"k","points":[[1,2,3,4]]}`,     // 4-element point
		`{"key":"k","points":[[+1,2,3]]}`,      // leading + (not JSON)
		`{"key":"k","points":[[.5,2,3]]}`,      // bare fraction (not JSON)
		`{"key":"k","points":[[1.,2,3]]}`,      // trailing dot (not JSON)
		`{"key":"k","points":[[01,2,3]]}`,      // leading zero (not JSON)
		`{"key":"k","points":[[1e,2,3]]}`,      // empty exponent (not JSON)
		`{"key":"k","points":[[1e999,2,3]]}`,   // range overflow → generic error
		`{"key":"k","points":[[1,"2",3]]}`,     // string coordinate
		`{"key":"k","points":[[1,null,3]]}`,    // null coordinate
		`{"key":"k\u0041","points":[]}`,        // escaped key
		`{"key":"k","points":[[1,2,3]],"x":1}`, // unknown field
		`{"key":"k","key":"j","points":[]}`,    // duplicate field
		`{"key":"k","points":[[1,2,3]]} extra`,
		`{"points":[[1,2,3]],"points":[]}`,
	}
	for _, body := range declined {
		var req batchReq
		if parseBatchFast([]byte(body), &req) {
			t.Errorf("fast path accepted %q; it must decline to the generic decoder", body)
		}
	}
}
