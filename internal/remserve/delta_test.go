package remserve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remstore"
)

// testPredict2 is a second deterministic field, so a rebuild against it
// produces a genuinely different generation.
func testPredict2(centers []geom.Vec3, keyIdx int) ([]float64, error) {
	out := make([]float64, len(centers))
	for i, p := range centers {
		out[i] = -45 - 2*p.X - p.Y - float64(keyIdx%3)
	}
	return out, nil
}

// snapshotBytes renders a map through the snapshot codec.
func snapshotBytes(t *testing.T, m *rem.Map) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeltaEndpointMonolithic walks the full /delta contract over a
// monolithic store: a retained base yields a REMD message that applies
// to exactly the serving map; a current client gets 304; a missing or
// malformed base tag degrades to a full snapshot; no tag is a 400.
func TestDeltaEndpointMonolithic(t *testing.T) {
	keys := testKeys(5)
	st := remstore.New(4)
	m1, err := rem.BuildMapBatch(testVolume(), 8, 6, 4, keys, testPredict, rem.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(m1, len(keys)); err != nil {
		t.Fatal(err)
	}
	m2, err := m1.RebuildKeys([]int{1, 3}, testPredict2, rem.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(m2, 2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewStore(st, Options{}))
	defer srv.Close()

	status, hdr, body := get(t, srv.URL+"/delta?from=1")
	if status != 200 || hdr.Get("Content-Type") != DeltaContentType {
		t.Fatalf("delta from retained base: status %d type %q", status, hdr.Get("Content-Type"))
	}
	if hdr.Get("ETag") != `"2"` || hdr.Get("X-REM-Version") != "2" || hdr.Get("X-REM-Delta-Base") != "1" {
		t.Fatalf("delta headers = %v", hdr)
	}
	applied, err := rem.ApplyDelta(m1, body)
	if err != nil {
		t.Fatal(err)
	}
	if !applied.Equal(m2) || applied.Version() != m2.Version() {
		t.Fatal("applied delta is not the serving generation")
	}
	// The delta is a strict improvement over refetching: smaller than the
	// full codec for this 2-of-5-key change.
	if full := snapshotBytes(t, m2); len(body) >= len(full) {
		t.Fatalf("delta %d bytes, full snapshot %d", len(body), len(full))
	}

	// A client already at the serving generation: 304, by tag or by
	// If-None-Match.
	if status, _, _ := get(t, srv.URL+"/delta?from=2"); status != http.StatusNotModified {
		t.Fatalf("delta from current tag: status %d, want 304", status)
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/delta?from=1", nil)
	req.Header.Set("If-None-Match", `"2"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match current: status %d, want 304", resp.StatusCode)
	}

	// An evicted or nonsense base degrades to the full snapshot codec.
	for _, from := range []string{"99", "not-a-tag", "1.2"} {
		status, hdr, body := get(t, srv.URL+"/delta?from="+from)
		if status != 200 || hdr.Get("Content-Type") != "application/octet-stream" {
			t.Fatalf("from=%q: status %d type %q, want full-snapshot fallback", from, status, hdr.Get("Content-Type"))
		}
		if !bytes.Equal(body, snapshotBytes(t, m2)) {
			t.Fatalf("from=%q: fallback body differs from /snapshot", from)
		}
		if hdr.Get("X-REM-Delta-Base") != "" {
			t.Fatalf("from=%q: fallback claims a delta base", from)
		}
	}

	// No from tag at all is a client error.
	if status, _, _ := get(t, srv.URL+"/delta"); status != http.StatusBadRequest {
		t.Fatalf("missing from: status %d, want 400", status)
	}
}

// TestDeltaEndpointSharded: the same contract against dotted version
// vectors, across shard counts — the delta applied to the old merged
// view reproduces the new merged view bit for bit (rule 8 over the
// delta wire).
func TestDeltaEndpointSharded(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			ss, _, _ := newServedShards(t, 9, shards)
			base, baseTag, err := ShardedBackend(ss).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ss.Rebuild(allDirty(9), testPredict2, rem.BuildOptions{}); err != nil {
				t.Fatal(err)
			}
			next, nextTag, err := ShardedBackend(ss).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(NewSharded(ss, Options{}))
			defer srv.Close()

			status, hdr, body := get(t, srv.URL+"/delta?from="+baseTag)
			if status != 200 || hdr.Get("Content-Type") != DeltaContentType {
				t.Fatalf("status %d type %q", status, hdr.Get("Content-Type"))
			}
			if hdr.Get("ETag") != `"`+nextTag+`"` {
				t.Fatalf("ETag %q, want %q", hdr.Get("ETag"), `"`+nextTag+`"`)
			}
			applied, err := rem.ApplyDelta(base, body)
			if err != nil {
				t.Fatal(err)
			}
			if !applied.Equal(next) {
				t.Fatal("applied delta differs from merged serving view")
			}
			if status, _, _ := get(t, srv.URL+"/delta?from="+nextTag); status != http.StatusNotModified {
				t.Fatalf("current tag: status %d, want 304", status)
			}
			// A wrong-arity vector can never resolve: full-snapshot fallback.
			status, hdr, body = get(t, srv.URL+"/delta?from="+nextTag+".7")
			if status != 200 || hdr.Get("Content-Type") != "application/octet-stream" {
				t.Fatalf("wrong-arity tag: status %d type %q", status, hdr.Get("Content-Type"))
			}
			if !bytes.Equal(body, snapshotBytes(t, next)) {
				t.Fatal("fallback body differs from serving snapshot")
			}
		})
	}
}

// TestDeltaEndpointEmpty: before anything publishes, /delta is 503 like
// every other query.
func TestDeltaEndpointEmpty(t *testing.T) {
	srv := httptest.NewServer(NewStore(remstore.New(0), Options{}))
	defer srv.Close()
	if status, _, _ := get(t, srv.URL+"/delta?from=1"); status != http.StatusServiceUnavailable {
		t.Fatalf("empty store delta: status %d, want 503", status)
	}
	if status, _, body := get(t, srv.URL+"/healthz"); status != http.StatusServiceUnavailable || !strings.Contains(string(body), `"empty"`) {
		t.Fatalf("empty store healthz: status %d body %q, want 503 empty", status, body)
	}
}

// TestServerTimeouts pins the Options → http.Server wiring: zero means
// the hardened default, negative disables, positive passes through.
func TestServerTimeouts(t *testing.T) {
	st := remstore.New(0)
	hs := NewStore(st, Options{}).httpServer()
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout || hs.ReadTimeout != DefaultReadTimeout || hs.IdleTimeout != DefaultIdleTimeout {
		t.Fatalf("default timeouts = %v/%v/%v", hs.ReadHeaderTimeout, hs.ReadTimeout, hs.IdleTimeout)
	}
	hs = NewStore(st, Options{
		ReadHeaderTimeout: 7 * time.Second,
		ReadTimeout:       -1,
		IdleTimeout:       time.Minute,
	}).httpServer()
	if hs.ReadHeaderTimeout != 7*time.Second {
		t.Fatalf("explicit ReadHeaderTimeout = %v", hs.ReadHeaderTimeout)
	}
	if hs.ReadTimeout != 0 {
		t.Fatalf("disabled ReadTimeout = %v, want 0", hs.ReadTimeout)
	}
	if hs.IdleTimeout != time.Minute {
		t.Fatalf("explicit IdleTimeout = %v", hs.IdleTimeout)
	}
}
