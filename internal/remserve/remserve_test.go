package remserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remshard"
	"repro/internal/remstore"
)

// testVolume is a small volume with non-trivial bounds.
func testVolume() geom.Cuboid {
	return geom.Cuboid{Min: geom.V(0, 0, 0), Max: geom.V(4, 3, 2.6)}
}

// testPredict is a deterministic synthetic predictor: value depends on
// position and key only, so any build path produces identical maps.
func testPredict(centers []geom.Vec3, keyIdx int) ([]float64, error) {
	out := make([]float64, len(centers))
	for i, p := range centers {
		out[i] = -60 - p.X - 2*p.Y - 3*p.Z - float64(keyIdx)
	}
	return out, nil
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("AA:BB:00:00:00:%02X", i)
	}
	return keys
}

func allDirty(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// newServedShards builds a fully-published sharded store over nKeys
// keys and shards shards, plus the equivalent monolithic map.
func newServedShards(t testing.TB, nKeys, shards int) (*remshard.ShardedStore, *rem.Map, []string) {
	t.Helper()
	keys := testKeys(nKeys)
	ss, err := remshard.New(keys, remshard.Config{
		Shards: shards, Volume: testVolume(), Resolution: [3]int{8, 6, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Rebuild(allDirty(nKeys), testPredict, rem.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	mono, err := rem.BuildMapBatch(testVolume(), 8, 6, 4, keys, testPredict, rem.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return ss, mono, keys
}

func testPoints() []geom.Vec3 {
	return []geom.Vec3{
		geom.V(2, 1.5, 1.3),
		geom.V(0, 0, 0),
		geom.V(4, 3, 2.6),
		geom.V(-1, 10, 0.5), // clamped into the volume
		geom.V(3.3, 0.1, 2),
	}
}

// wireFloat renders a float the way the wire format does — an
// independent mirror of the handler's encoder, so an encoding bug
// cannot cancel itself out of the byte comparison.
func wireFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func get(t testing.TB, url string) (int, http.Header, []byte) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, r.Header, body
}

// TestRule8OverTheWire pins the acceptance identity: for shard counts
// 1, 2 and 4, every byte served over HTTP equals what the direct
// library calls return — /at and /strongest render the exact value
// bits the sharded store (and, by rule 8, the monolithic map) answers,
// /snapshot streams exactly MergedSnapshot().WriteTo, and /stats is
// exactly the marshalled backend stats.
func TestRule8OverTheWire(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			ss, mono, keys := newServedShards(t, 9, shards)
			srv := httptest.NewServer(NewSharded(ss, Options{}))
			defer srv.Close()

			for _, key := range keys {
				for _, p := range testPoints() {
					want, wantVer, err := ss.At(key, p)
					if err != nil {
						t.Fatal(err)
					}
					monoWant, err := mono.At(key, p)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(want) != math.Float64bits(monoWant) {
						t.Fatalf("rule 8 broken in the library itself: %v vs %v", want, monoWant)
					}
					status, _, body := get(t, fmt.Sprintf("%s/at?key=%s&x=%g&y=%g&z=%g", srv.URL, key, p.X, p.Y, p.Z))
					if status != http.StatusOK {
						t.Fatalf("GET /at: status %d: %s", status, body)
					}
					exp := fmt.Sprintf("{\"key\":%q,\"value\":%s,\"version\":%d}\n", key, wireFloat(want), wantVer)
					if string(body) != exp {
						t.Fatalf("GET /at bytes:\n got %q\nwant %q", body, exp)
					}
				}
			}

			// Batch POST ≡ the pointwise answers, one snapshot version.
			key := keys[3]
			pts := testPoints()
			reqBody := map[string]any{"key": key, "points": [][3]float64{}}
			ptsArr := make([][3]float64, len(pts))
			for i, p := range pts {
				ptsArr[i] = [3]float64{p.X, p.Y, p.Z}
			}
			reqBody["points"] = ptsArr
			enc, err := json.Marshal(reqBody)
			if err != nil {
				t.Fatal(err)
			}
			wantVals, wantVer, err := ss.AtBatch(key, pts)
			if err != nil {
				t.Fatal(err)
			}
			r, err := http.Post(srv.URL+"/at", "application/json", bytes.NewReader(enc))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			if r.StatusCode != http.StatusOK {
				t.Fatalf("POST /at: status %d: %s", r.StatusCode, body)
			}
			var sb bytes.Buffer
			fmt.Fprintf(&sb, "{\"key\":%q,\"values\":[", key)
			for i, v := range wantVals {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(wireFloat(v))
			}
			fmt.Fprintf(&sb, "],\"version\":%d}\n", wantVer)
			if string(body) != sb.String() {
				t.Fatalf("POST /at bytes:\n got %q\nwant %q", body, sb.String())
			}

			// Strongest ≡ library merge (and the monolithic winner).
			for _, p := range testPoints() {
				wk, wv, wver, err := ss.Strongest(p)
				if err != nil {
					t.Fatal(err)
				}
				mk, mv := mono.Strongest(p)
				if wk != mk || math.Float64bits(wv) != math.Float64bits(mv) {
					t.Fatalf("rule 8 broken in the library itself: %s %v vs %s %v", wk, wv, mk, mv)
				}
				status, _, body := get(t, fmt.Sprintf("%s/strongest?x=%g&y=%g&z=%g", srv.URL, p.X, p.Y, p.Z))
				if status != http.StatusOK {
					t.Fatalf("GET /strongest: status %d: %s", status, body)
				}
				exp := fmt.Sprintf("{\"key\":%q,\"value\":%s,\"version\":%d}\n", wk, wireFloat(wv), wver)
				if string(body) != exp {
					t.Fatalf("GET /strongest bytes:\n got %q\nwant %q", body, exp)
				}
			}

			// Snapshot ≡ direct codec export of the same generation —
			// and Map.Equal to the monolithic build (rule 8).
			merged, versions, err := ss.MergedSnapshotVersions()
			if err != nil {
				t.Fatal(err)
			}
			if !merged.Equal(mono) {
				t.Fatal("rule 8 broken in the library itself: merged ≠ monolithic")
			}
			var direct bytes.Buffer
			if _, err := merged.WriteTo(&direct); err != nil {
				t.Fatal(err)
			}
			status, hdr, body := get(t, srv.URL+"/snapshot")
			if status != http.StatusOK {
				t.Fatalf("GET /snapshot: status %d", status)
			}
			if !bytes.Equal(body, direct.Bytes()) {
				t.Fatalf("GET /snapshot bytes differ from direct WriteTo (%d vs %d bytes)", len(body), direct.Len())
			}
			wantTag := versionTag(versions)
			if got := hdr.Get("ETag"); got != `"`+wantTag+`"` {
				t.Fatalf("ETag %q, want %q", got, `"`+wantTag+`"`)
			}
			restored, err := rem.ReadFrom(bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			if !restored.Equal(merged) {
				t.Fatal("snapshot bytes do not restore the serving map")
			}

			// Stats ≡ the marshalled backend stats, nested under the
			// stable "store" key with the legacy flat copy alongside
			// (counters quiesced: no requests in flight between the two
			// reads).
			raw, err := json.Marshal(ShardedBackend(ss).Stats())
			if err != nil {
				t.Fatal(err)
			}
			expStats := `{"store":` + string(raw) + `,` + string(raw[1:])
			status, _, body = get(t, srv.URL+"/stats")
			if status != http.StatusOK {
				t.Fatalf("GET /stats: status %d", status)
			}
			if string(body) != expStats+"\n" {
				t.Fatalf("GET /stats bytes:\n got %s\nwant %s", body, expStats)
			}
		})
	}
}

// TestMonolithicBackend drives the same wire shapes through a plain
// remstore.Store backend.
func TestMonolithicBackend(t *testing.T) {
	_, mono, keys := newServedShards(t, 5, 1)
	st := remstore.New(0)
	if _, err := st.Publish(mono, len(keys)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewStore(st, Options{}))
	defer srv.Close()

	p := geom.V(1.2, 0.7, 2.0)
	want, wantVer, err := st.At(keys[2], p)
	if err != nil {
		t.Fatal(err)
	}
	status, _, body := get(t, fmt.Sprintf("%s/at?key=%s&x=%g&y=%g&z=%g", srv.URL, keys[2], p.X, p.Y, p.Z))
	if status != http.StatusOK {
		t.Fatalf("GET /at: status %d: %s", status, body)
	}
	exp := fmt.Sprintf("{\"key\":%q,\"value\":%s,\"version\":%d}\n", keys[2], wireFloat(want), wantVer)
	if string(body) != exp {
		t.Fatalf("GET /at bytes:\n got %q\nwant %q", body, exp)
	}

	var direct bytes.Buffer
	if _, err := mono.WriteTo(&direct); err != nil {
		t.Fatal(err)
	}
	status, hdr, body := get(t, srv.URL+"/snapshot")
	if status != http.StatusOK || !bytes.Equal(body, direct.Bytes()) {
		t.Fatalf("GET /snapshot: status %d, byte match %v", status, bytes.Equal(body, direct.Bytes()))
	}
	if got := hdr.Get("ETag"); got != `"1"` {
		t.Fatalf("ETag %q, want %q", got, `"1"`)
	}

	status, _, body = get(t, srv.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("GET /healthz: status %d: %s", status, body)
	}
	exp = "{\"status\":\"serving\",\"shards\":1,\"version\":\"1\"}\n"
	if string(body) != exp {
		t.Fatalf("GET /healthz bytes:\n got %q\nwant %q", body, exp)
	}
	status, _, body = get(t, srv.URL+"/version")
	if status != http.StatusOK || string(body) != "{\"version\":\"1\",\"shards\":1}\n" {
		t.Fatalf("GET /version: status %d body %q", status, body)
	}
}

// TestETagTracksRebuilds pins the cache contract: If-None-Match on the
// serving tag answers 304 with no body; any shard republishing changes
// the tag and revalidation serves the new bytes.
func TestETagTracksRebuilds(t *testing.T) {
	ss, _, _ := newServedShards(t, 6, 2)
	srv := httptest.NewServer(NewSharded(ss, Options{}))
	defer srv.Close()

	_, hdr, first := get(t, srv.URL+"/snapshot")
	etag := hdr.Get("ETag")

	req, err := http.NewRequest(http.MethodGet, srv.URL+"/snapshot", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation: status %d, %d body bytes (want 304, 0)", r.StatusCode, len(body))
	}
	if got := r.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag %q, want %q", got, etag)
	}

	// Republishing one shard must change the tag: the same
	// If-None-Match now misses and the new generation is served.
	if _, err := ss.Rebuild([]int{0}, testPredict, rem.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("post-rebuild revalidation: status %d, want 200", r.StatusCode)
	}
	if r.Header.Get("ETag") == etag {
		t.Fatal("ETag did not change across a rebuild")
	}
	// The predictor is pure, so the rebuilt generation holds identical
	// cells — only the map-version provenance moved. The served bytes
	// must restore to a map Equal to the first download's.
	restored, err := rem.ReadFrom(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post-rebuild snapshot not restorable: %v", err)
	}
	was, err := rem.ReadFrom(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Equal(was) {
		t.Fatal("pure-predictor rebuild changed served cells")
	}
}

// TestHammerUnderRebuilds is the acceptance hammer: HTTP readers on
// /at, /strongest, /snapshot, /stats and /healthz race a writer that
// keeps republishing shards. Run under -race this proves the serving
// path shares no unsynchronised state with rebuilds; every response
// must be well-formed and every value must equal the library's answer
// bit for bit at some serving generation (values are
// generation-independent here by construction, so equality is exact).
func TestHammerUnderRebuilds(t *testing.T) {
	const nKeys = 8
	ss, mono, keys := newServedShards(t, nKeys, 4)
	srv := httptest.NewServer(NewSharded(ss, Options{}))
	defer srv.Close()

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			dirty := []int{i % nKeys, (i + 3) % nKeys}
			if _, err := ss.Rebuild(dirty, testPredict, rem.BuildOptions{Workers: 2}); err != nil {
				t.Errorf("rebuild: %v", err)
				return
			}
		}
	}()

	client := srv.Client()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			pts := testPoints()
			for i := 0; i < 150; i++ {
				key := keys[(g+i)%len(keys)]
				p := pts[i%len(pts)]
				r, err := client.Get(fmt.Sprintf("%s/at?key=%s&x=%g&y=%g&z=%g", srv.URL, key, p.X, p.Y, p.Z))
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(r.Body)
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					t.Errorf("GET /at status %d: %s", r.StatusCode, body)
					return
				}
				var resp struct {
					Key     string   `json:"key"`
					Value   *float64 `json:"value"`
					Version uint64   `json:"version"`
				}
				if err := json.Unmarshal(body, &resp); err != nil {
					t.Errorf("GET /at body %q: %v", body, err)
					return
				}
				want, err := mono.At(key, p)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.Value == nil || math.Float64bits(*resp.Value) != math.Float64bits(want) {
					t.Errorf("GET /at %s: value %v, want %v", key, resp.Value, want)
					return
				}
				switch i % 10 {
				case 3:
					r, err := client.Get(srv.URL + "/strongest?x=1&y=1&z=1")
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					if r.StatusCode != http.StatusOK {
						t.Errorf("GET /strongest status %d", r.StatusCode)
						return
					}
				case 5:
					r, err := client.Get(srv.URL + "/snapshot")
					if err != nil {
						t.Error(err)
						return
					}
					snap, _ := io.ReadAll(r.Body)
					r.Body.Close()
					if r.StatusCode != http.StatusOK {
						t.Errorf("GET /snapshot status %d", r.StatusCode)
						return
					}
					m, err := rem.ReadFrom(bytes.NewReader(snap))
					if err != nil {
						t.Errorf("snapshot under rebuild not restorable: %v", err)
						return
					}
					if !m.Equal(mono) {
						t.Error("snapshot under rebuild differs from the invariant map")
						return
					}
				case 7:
					r, err := client.Get(srv.URL + "/stats")
					if err != nil {
						t.Error(err)
						return
					}
					var st Stats
					err = json.NewDecoder(r.Body).Decode(&st)
					r.Body.Close()
					if err != nil || st.Shards != 4 {
						t.Errorf("GET /stats: %v (shards %d)", err, st.Shards)
						return
					}
				case 9:
					r, err := client.Get(srv.URL + "/healthz")
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					if r.StatusCode != http.StatusOK {
						t.Errorf("GET /healthz status %d under rebuilds", r.StatusCode)
						return
					}
				}
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// gatedBackend wraps a Backend so a test can hold an in-flight query
// open across a Shutdown call.
type gatedBackend struct {
	Backend
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedBackend) At(key string, p geom.Vec3) (float64, uint64, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.release
	return g.Backend.At(key, p)
}

// TestShutdownDrains pins graceful shutdown: a query already past the
// accept point completes with its full response while Shutdown waits,
// and the listener stops accepting new work afterwards.
func TestShutdownDrains(t *testing.T) {
	ss, _, keys := newServedShards(t, 4, 2)
	gb := &gatedBackend{
		Backend: ShardedBackend(ss),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	srv := New(gb, Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	// Serve records the bound address before accepting; wait for it so
	// the client below cannot race a still-empty Addr.
	for srv.Addr() == "" {
		time.Sleep(time.Millisecond)
	}

	type result struct {
		status int
		body   []byte
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		r, err := http.Get(fmt.Sprintf("http://%s/at?key=%s&x=1&y=1", srv.Addr(), keys[0]))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		resCh <- result{status: r.StatusCode, body: body}
	}()
	select {
	case <-gb.entered:
	case res := <-resCh:
		t.Fatalf("request completed without entering the backend: status %d err %v", res.status, res.err)
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	// Shutdown must be waiting on the in-flight request, not killing it.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gb.release)
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res := <-resCh
	if res.err != nil || res.status != http.StatusOK {
		t.Fatalf("in-flight request not drained: status %d err %v", res.status, res.err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after clean Shutdown", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", l.Addr())); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
