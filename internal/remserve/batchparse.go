package remserve

import (
	"strconv"
)

// Fast path for the POST /at body. encoding/json decodes a 512-point
// batch through per-element reflection, which costs more than the 512
// store lookups it feeds; this hand-rolled scanner handles the exact
// shape well-behaved clients send — {"key":"…","points":[[x,y,z],…]},
// any field order, any JSON number syntax, no escapes in the key —
// and reports ok=false for anything else so the caller can fall back
// to encoding/json for full generality. The fallback keeps behaviour
// identical on every body the fast path declines: exotic-but-legal
// bodies still parse, malformed ones still get encoding/json's
// diagnostics (pinned by TestBatchParseMatchesEncodingJSON).

type batchScanner struct {
	b []byte
	i int
}

func (s *batchScanner) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

// expect consumes c (after whitespace) or fails.
func (s *batchScanner) expect(c byte) bool {
	s.ws()
	if s.i < len(s.b) && s.b[s.i] == c {
		s.i++
		return true
	}
	return false
}

// peek reports the next non-whitespace byte without consuming it.
func (s *batchScanner) peek() (byte, bool) {
	s.ws()
	if s.i < len(s.b) {
		return s.b[s.i], true
	}
	return 0, false
}

// simpleString parses a JSON string with no escapes (a MAC key; a body
// whose key needs escaping takes the fallback).
func (s *batchScanner) simpleString() (string, bool) {
	if !s.expect('"') {
		return "", false
	}
	start := s.i
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c == '"':
			// The copy detaches the key from the pooled body buffer.
			str := string(s.b[start:s.i])
			s.i++
			return str, true
		case c == '\\' || c < 0x20:
			return "", false
		default:
			s.i++
		}
	}
	return "", false
}

// number parses one JSON number. The token must match JSON's exact
// number grammar before strconv sees it — strconv.ParseFloat is a
// superset (it also takes "+1", ".5", "1.", hex floats), and accepting
// those here would make the fast path serve bodies the generic decoder
// rejects. Range overflow ("1e999") fails ParseFloat and falls back,
// where encoding/json produces the client-visible error.
func (s *batchScanner) number() (float64, bool) {
	s.ws()
	start := s.i
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			s.i++
		default:
			goto done
		}
	}
done:
	tok := s.b[start:s.i]
	if !validJSONNumber(tok) {
		return 0, false
	}
	v, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// validJSONNumber reports whether b matches RFC 8259's number grammar:
// -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
func validJSONNumber(b []byte) bool {
	i := 0
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i == len(b) || b[i] < '0' || b[i] > '9' {
			return false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i == len(b) || b[i] < '0' || b[i] > '9' {
			return false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	return i == len(b)
}

// parseBatchFast decodes body into req. ok=false means "shape outside
// the fast subset — use encoding/json"; it never reports success on a
// body the generic decoder would reject with an error the client needs
// to see.
func parseBatchFast(body []byte, req *batchReq) bool {
	s := batchScanner{b: body}
	if !s.expect('{') {
		return false
	}
	req.Key = ""
	req.Points = req.Points[:0]
	sawKey, sawPoints := false, false
	if c, ok := s.peek(); ok && c == '}' {
		s.i++
	} else {
		for {
			name, ok := s.simpleString()
			if !ok || !s.expect(':') {
				return false
			}
			switch name {
			case "key":
				if sawKey {
					return false // duplicate field semantics → fallback
				}
				sawKey = true
				k, ok := s.simpleString()
				if !ok {
					return false
				}
				req.Key = k
			case "points":
				if sawPoints {
					return false
				}
				sawPoints = true
				if !s.expect('[') {
					return false
				}
				if c, ok := s.peek(); ok && c == ']' {
					s.i++
					break
				}
				for {
					if !s.expect('[') {
						return false
					}
					var p [3]float64
					for d := 0; d < 3; d++ {
						v, ok := s.number()
						if !ok {
							return false
						}
						p[d] = v
						if d < 2 && !s.expect(',') {
							return false
						}
					}
					if !s.expect(']') {
						return false
					}
					req.Points = append(req.Points, p)
					if c, ok := s.peek(); ok && c == ',' {
						s.i++
						continue
					}
					break
				}
				if !s.expect(']') {
					return false
				}
			default:
				return false // unknown field → let encoding/json decide
			}
			if c, ok := s.peek(); ok && c == ',' {
				s.i++
				continue
			}
			break
		}
		if !s.expect('}') {
			return false
		}
	}
	s.ws()
	return s.i == len(s.b)
}
