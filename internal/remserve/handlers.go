package remserve

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remshard"
	"repro/internal/remstore"
)

// This file is the request path: routing, parameter parsing and
// response assembly. The hot handlers (GET/POST /at, GET /strongest)
// are zero-allocation after warm-up: the query string is scanned in
// place (no url.Values map), response bodies are appended into pooled
// buffers, and the Content-Type header is installed as a shared
// package-level slice. Float values render in strconv 'g' shortest
// round-trip form — the same bits parse back — with non-finite values
// (JSON has no NaN/Inf) as null. The encoding is deterministic: the
// same (value, version) always serialises to the same bytes, which is
// what lets the rule 8 wire tests compare HTTP responses against
// direct library calls byte for byte.

// buffers is the per-request scratch a handler borrows from the pool:
// the response body, the POST body, decoded points and query outputs.
// wireKey memoises the last binary-batch key so steady-state binary
// requests allocate nothing at all.
type buffers struct {
	out     []byte
	body    []byte
	pts     []geom.Vec3
	vals    []float64
	skeys   []string
	req     batchReq
	wireKey string
}

// batchReq is the POST /at body shape.
type batchReq struct {
	Key    string       `json:"key"`
	Points [][3]float64 `json:"points"`
}

var bufPool = sync.Pool{New: func() any { return new(buffers) }}

// jsonCT, binCT and wireCT are installed into response header maps as
// shared slices so the hot path never allocates a header value. They
// are never mutated.
// DeltaContentType is the media type of a GET /delta response carrying
// a rem tile-delta ("REMD") message. A /delta response carrying a full
// snapshot instead (base no longer retained) uses the /snapshot media
// type, application/octet-stream — the Content-Type is how a follower
// tells the two apart.
const DeltaContentType = "application/x-rem-delta"

var (
	jsonCT  = []string{"application/json"}
	binCT   = []string{"application/octet-stream"}
	wireCT  = []string{WireContentType}
	deltaCT = []string{DeltaContentType}
	varyAE  = []string{"Accept-Encoding"}
)

// route routes the fixed endpoint set. Unknown paths get 404, wrong
// methods 405 with an Allow header. With rate limiting enabled,
// over-budget clients get 429 + Retry-After before any routing —
// /healthz stays exempt so orchestrator readiness probes cannot be
// throttled into a false "down". ServeHTTP (metrics.go) wraps this
// with the per-request instrumentation when an Observer is attached.
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	if s.limiter != nil && r.URL.Path != "/healthz" {
		if ok, retryAfter := s.limiter.allow(r.RemoteAddr); !ok {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			http.Error(w, "remserve: rate limit exceeded", http.StatusTooManyRequests)
			return
		}
	}
	switch r.URL.Path {
	case "/at":
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			s.handleAt(w, r)
		case http.MethodPost:
			s.handleAtBatch(w, r)
		default:
			methodNotAllowed(w, "GET, POST")
		}
	case "/strongest":
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			s.handleStrongest(w, r)
		case http.MethodPost:
			s.handleStrongestBatch(w, r)
		default:
			methodNotAllowed(w, "GET, POST")
		}
	case "/observe":
		if s.ingestQ == nil {
			// Read-only deployments do not reveal a write surface.
			http.NotFound(w, r)
			return
		}
		if r.Method != http.MethodPost {
			methodNotAllowed(w, "POST")
			return
		}
		s.handleObserve(w, r)
	case "/stats":
		if !getOrHead(w, r) {
			return
		}
		s.handleStats(w)
	case "/snapshot":
		if !getOrHead(w, r) {
			return
		}
		s.handleSnapshot(w, r)
	case "/delta":
		if !getOrHead(w, r) {
			return
		}
		s.handleDelta(w, r)
	case "/healthz":
		if !getOrHead(w, r) {
			return
		}
		s.handleHealthz(w)
	case "/version":
		if !getOrHead(w, r) {
			return
		}
		s.handleVersion(w)
	case "/metrics":
		if s.obs == nil || s.obs.Registry == nil {
			// No observer, no exposition — same posture as /observe on a
			// read-only deployment.
			http.NotFound(w, r)
			return
		}
		if !getOrHead(w, r) {
			return
		}
		s.handleMetrics(w)
	default:
		http.NotFound(w, r)
	}
}

// getOrHead admits GET and HEAD (net/http suppresses the response body
// for HEAD on its own) and answers 405 for everything else.
func getOrHead(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		methodNotAllowed(w, "GET")
		return false
	}
	return true
}

func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	http.Error(w, http.StatusText(http.StatusMethodNotAllowed), http.StatusMethodNotAllowed)
}

// queryError maps a store error to its status: 404 for a key outside
// the vocabulary, 503 for a store that has not (fully) published yet —
// both with the store's own message — and 500 for anything else.
func queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, rem.ErrUnknownKey):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, remstore.ErrEmpty), errors.Is(err, remshard.ErrPartial):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeJSON emits a completed body from a pooled buffer. The
// Content-Type slice is installed only when absent so steady-state
// writes against a reused header map allocate nothing.
func writeJSON(w http.ResponseWriter, body []byte) {
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		h["Content-Type"] = jsonCT
	}
	w.Write(body)
}

// writeWire is writeJSON's binary twin: a completed wire message from a
// pooled buffer under the wire media type.
func writeWire(w http.ResponseWriter, body []byte) {
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		h["Content-Type"] = wireCT
	}
	w.Write(body)
}

// handleAt serves GET /at?key=K&x=…&y=…[&z=…]. An Accept naming the
// binary wire media type switches the response to the "REMS" keyed
// message (the raw value bits, no text rendering); JSON stays the
// default.
func (s *Server) handleAt(w http.ResponseWriter, r *http.Request) {
	key, p, err := queryParams(r.URL.RawQuery, true)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	v, ver, err := s.b.At(key, p)
	if err != nil {
		queryError(w, err)
		return
	}
	if acceptsWire(r.Header.Get("Accept")) {
		bb := bufPool.Get().(*buffers)
		b := appendWireKeyedResponse(bb.out[:0], ver, key, v)
		writeWire(w, b)
		bb.out = b
		bufPool.Put(bb)
		return
	}
	bb := bufPool.Get().(*buffers)
	b := append(bb.out[:0], `{"key":`...)
	b = appendJSONString(b, key)
	b = append(b, `,"value":`...)
	b = appendJSONFloat(b, v)
	b = append(b, `,"version":`...)
	b = strconv.AppendUint(b, ver, 10)
	b = append(b, "}\n"...)
	writeJSON(w, b)
	bb.out = b
	bufPool.Put(bb)
}

// handleStrongest serves GET /strongest?x=…&y=…[&z=…], with the same
// Accept-negotiated binary variant as GET /at (the winning key rides in
// the "REMS" message).
func (s *Server) handleStrongest(w http.ResponseWriter, r *http.Request) {
	_, p, err := queryParams(r.URL.RawQuery, false)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key, v, ver, err := s.b.Strongest(p)
	if err != nil {
		queryError(w, err)
		return
	}
	if acceptsWire(r.Header.Get("Accept")) {
		bb := bufPool.Get().(*buffers)
		b := appendWireKeyedResponse(bb.out[:0], ver, key, v)
		writeWire(w, b)
		bb.out = b
		bufPool.Put(bb)
		return
	}
	bb := bufPool.Get().(*buffers)
	b := append(bb.out[:0], `{"key":`...)
	b = appendJSONString(b, key)
	b = append(b, `,"value":`...)
	b = appendJSONFloat(b, v)
	b = append(b, `,"version":`...)
	b = strconv.AppendUint(b, ver, 10)
	b = append(b, "}\n"...)
	writeJSON(w, b)
	bb.out = b
	bufPool.Put(bb)
}

// handleAtBatch serves POST /at: the key is resolved once and the whole
// batch is answered by one snapshot of the owning store. The request
// codec follows Content-Type — the binary wire format
// (application/x-rem-batch, decoded straight into the pooled point
// buffer with zero text parsing) or JSON (the fast-path scanner with the
// encoding/json fallback, unchanged) — and the response codec follows
// Accept independently, so any of the four format pairings works.
// Bodies over MaxBatchBytes and batches over MaxBatchPoints get 413 on
// both codecs.
func (s *Server) handleAtBatch(w http.ResponseWriter, r *http.Request) {
	bb := bufPool.Get().(*buffers)
	defer func() { bufPool.Put(bb) }()
	body, ok := s.readCappedBody(w, r, bb)
	if !ok {
		return
	}
	if isWireContentType(r.Header.Get("Content-Type")) {
		if err := decodeWireBatch(body, bb, s.maxPoints, false); err != nil {
			we := err.(*wireError)
			http.Error(w, we.msg, we.status)
			return
		}
	} else if err := s.parseJSONBatch(body, bb, true); err != nil {
		we := err.(*wireError)
		http.Error(w, we.msg, we.status)
		return
	}
	if cap(bb.vals) < len(bb.pts) {
		bb.vals = make([]float64, len(bb.pts))
	}
	vals := bb.vals[:len(bb.pts)]
	ver, err := s.b.AtBatchInto(vals, bb.req.Key, bb.pts)
	if err != nil {
		queryError(w, err)
		return
	}
	if acceptsWire(r.Header.Get("Accept")) {
		b := appendWireBatchResponse(bb.out[:0], ver, vals)
		writeWire(w, b)
		bb.out = b
		return
	}
	b := append(bb.out[:0], `{"key":`...)
	b = appendJSONString(b, bb.req.Key)
	b = append(b, `,"values":[`...)
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONFloat(b, v)
	}
	b = append(b, `],"version":`...)
	b = strconv.AppendUint(b, ver, 10)
	b = append(b, "}\n"...)
	writeJSON(w, b)
	bb.out = b
}

// handleStrongestBatch serves POST /strongest: a best-server query for
// every point of the batch, answered through the coverage index of the
// serving snapshot(s). The codec negotiation mirrors POST /at —
// Content-Type picks the request decoder (JSON `{"points":[[x,y,z],…]}`
// or a "REMQ" message with a zero-length key; a key is accepted and
// ignored on both, strongest always scans the whole vocabulary), Accept
// picks the response encoder (JSON `{"keys":…,"values":…,"version":…}`
// or the "REMW" keyed-batch message) — and the same size caps apply.
// The version is the serving snapshot generation for a monolithic
// backend and 0 for a sharded one.
func (s *Server) handleStrongestBatch(w http.ResponseWriter, r *http.Request) {
	bb := bufPool.Get().(*buffers)
	defer func() { bufPool.Put(bb) }()
	body, ok := s.readCappedBody(w, r, bb)
	if !ok {
		return
	}
	if isWireContentType(r.Header.Get("Content-Type")) {
		if err := decodeWireBatch(body, bb, s.maxPoints, true); err != nil {
			we := err.(*wireError)
			http.Error(w, we.msg, we.status)
			return
		}
	} else if err := s.parseJSONBatch(body, bb, false); err != nil {
		we := err.(*wireError)
		http.Error(w, we.msg, we.status)
		return
	}
	if cap(bb.vals) < len(bb.pts) {
		bb.vals = make([]float64, len(bb.pts))
	}
	if cap(bb.skeys) < len(bb.pts) {
		bb.skeys = make([]string, len(bb.pts))
	}
	vals := bb.vals[:len(bb.pts)]
	keys := bb.skeys[:len(bb.pts)]
	ver, err := s.b.StrongestBatchInto(keys, vals, bb.pts)
	if err != nil {
		queryError(w, err)
		return
	}
	if acceptsWire(r.Header.Get("Accept")) {
		b := appendWireStrongestResponse(bb.out[:0], ver, keys, vals)
		writeWire(w, b)
		bb.out = b
		return
	}
	b := append(bb.out[:0], `{"keys":[`...)
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, k)
	}
	b = append(b, `],"values":[`...)
	for i, v := range vals {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONFloat(b, v)
	}
	b = append(b, `],"version":`...)
	b = strconv.AppendUint(b, ver, 10)
	b = append(b, "}\n"...)
	writeJSON(w, b)
	bb.out = b
}

// parseJSONBatch is the JSON request codec: the strict fast-path
// scanner, the encoding/json fallback for anything outside its subset,
// then the finiteness and batch-size checks — producing bb.req.Key and
// bb.pts exactly like the binary decoder does. needKey is false on
// POST /strongest, whose body is `{"points":…}` (a "key" member is
// accepted and ignored — strongest scans the whole vocabulary).
func (s *Server) parseJSONBatch(body []byte, bb *buffers, needKey bool) error {
	if !parseBatchFast(body, &bb.req) {
		// Outside the fast subset: decode generically, so exotic-but-
		// legal bodies still work and malformed ones get encoding/json's
		// diagnostics.
		bb.req.Key = ""
		bb.req.Points = bb.req.Points[:0]
		if err := json.Unmarshal(body, &bb.req); err != nil {
			return wireErrorf(400, "remserve: bad batch body: %s", err.Error())
		}
	}
	if needKey && bb.req.Key == "" {
		return wireErrorf(400, `remserve: batch body needs a "key"`)
	}
	if len(bb.req.Points) > s.maxPoints {
		return wireErrorf(413, "remserve: batch of %d points exceeds the %d-point cap", len(bb.req.Points), s.maxPoints)
	}
	bb.pts = bb.pts[:0]
	for i, q := range bb.req.Points {
		for _, c := range q {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return wireErrorf(400, "remserve: point %d is not finite", i)
			}
		}
		bb.pts = append(bb.pts, geom.V(q[0], q[1], q[2]))
	}
	return nil
}

// handleSnapshot serves GET /snapshot: the binary codec of the serving
// map (Map.WriteTo — byte-identical to a direct library export of the
// same generation), with a strong ETag derived from the serving
// version(s). If-None-Match on an unchanged map answers 304 with no
// body, so a polling client pays one header exchange per unchanged
// generation. An Accept-Encoding naming gzip compresses the codec
// stream on the fly (pooled writers; decompressed bytes remain exactly
// Map.WriteTo); the ETag is the generation validator and is shared by
// both encodings — If-None-Match revalidation works identically with
// and without compression — and Vary: Accept-Encoding keeps shared
// caches from serving one client's encoding to the other.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	m, tag, err := s.b.Snapshot()
	if err != nil {
		queryError(w, err)
		return
	}
	etag := `"` + tag + `"`
	h := w.Header()
	h.Set("ETag", etag)
	h["Vary"] = varyAE
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h["Content-Type"] = binCT
	h.Set("X-REM-Version", tag)
	gz := acceptsGzip(r.Header.Get("Accept-Encoding"))
	if gz {
		h.Set("Content-Encoding", "gzip")
	}
	if r.Method == http.MethodHead {
		// Validators are set; skip serialising a body net/http would
		// discard anyway.
		return
	}
	if !gz {
		if _, err := m.WriteTo(w); err != nil {
			// Headers are gone; all we can do is abandon the connection.
			return
		}
		return
	}
	zw := gzPool.Get().(*gzip.Writer)
	zw.Reset(w)
	_, werr := m.WriteTo(zw)
	cerr := zw.Close()
	gzPool.Put(zw)
	if werr != nil || cerr != nil {
		// Headers (and possibly partial compressed bytes) are gone;
		// abandon the connection.
		return
	}
}

// handleDelta serves GET /delta?from=<tag>: the tile-delta ("REMD")
// message that turns the client's generation — named by the version tag
// it got from a previous /snapshot or /delta ETag — into the serving
// one. If the client is already current, 304. If the named base is no
// longer retained (evicted history, a restarted leader, a tag from
// another deployment — the tag is untrusted input and any unresolvable
// value lands here), the response degrades to the full snapshot codec,
// distinguished by Content-Type, so one request always yields bytes the
// follower can apply. Every 200 carries the serving tag in ETag and
// X-REM-Version; a delta body also echoes its base in X-REM-Delta-Base.
// An Accept-Encoding naming gzip compresses the response body — delta
// or full-snapshot fallback — exactly like /snapshot (pooled writers;
// the decompressed bytes remain the identical "REMD" message or
// Map.WriteTo codec, CRC trailer included), with Vary: Accept-Encoding
// on every response so shared caches keep the encodings apart.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	m, tag, err := s.b.Snapshot()
	if err != nil {
		queryError(w, err)
		return
	}
	from, err := unescape(r.URL.Query().Get("from"))
	if err != nil || from == "" {
		http.Error(w, `remserve: /delta needs a "from" version tag`, http.StatusBadRequest)
		return
	}
	etag := `"` + tag + `"`
	h := w.Header()
	h.Set("ETag", etag)
	h["Vary"] = varyAE
	if from == tag || etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("X-REM-Version", tag)
	gz := acceptsGzip(r.Header.Get("Accept-Encoding"))
	if base, ok := s.b.SnapshotAt(from); ok {
		bb := bufPool.Get().(*buffers)
		b, err := rem.AppendDelta(bb.out[:0], base, m)
		if err == nil {
			h["Content-Type"] = deltaCT
			h.Set("X-REM-Delta-Base", from)
			if gz {
				h.Set("Content-Encoding", "gzip")
			}
			if r.Method == http.MethodHead {
				bb.out = b
				bufPool.Put(bb)
				return
			}
			if !gz {
				w.Write(b)
			} else {
				zw := gzPool.Get().(*gzip.Writer)
				zw.Reset(w)
				_, werr := zw.Write(b)
				cerr := zw.Close()
				gzPool.Put(zw)
				_ = werr
				_ = cerr // headers are gone either way; nothing to report
			}
			bb.out = b
			bufPool.Put(bb)
			return
		}
		// A retained base the serving map cannot diff against (geometry
		// or vocabulary drift) degrades to a full snapshot like an
		// evicted one.
		bufPool.Put(bb)
	}
	h["Content-Type"] = binCT
	if gz {
		h.Set("Content-Encoding", "gzip")
	}
	if r.Method == http.MethodHead {
		return
	}
	if !gz {
		if _, err := m.WriteTo(w); err != nil {
			// Headers are gone; abandon the connection.
			return
		}
		return
	}
	zw := gzPool.Get().(*gzip.Writer)
	zw.Reset(w)
	_, werr := m.WriteTo(zw)
	cerr := zw.Close()
	gzPool.Put(zw)
	if werr != nil || cerr != nil {
		// Headers (and possibly partial compressed bytes) are gone;
		// abandon the connection.
		return
	}
}

// gzPool recycles gzip writers across /snapshot downloads — the
// deflate state is ~hundreds of KB, far too much to allocate per
// request.
var gzPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// acceptsGzip reports whether an Accept-Encoding header admits gzip:
// a "gzip" (or "x-gzip") member without q=0. The bare wildcard is
// deliberately not honoured — identity is this endpoint's default and
// always acceptable.
func acceptsGzip(header string) bool {
	for header != "" {
		var elem string
		if i := strings.IndexByte(header, ','); i >= 0 {
			elem, header = header[:i], header[i+1:]
		} else {
			elem, header = header, ""
		}
		coding := elem
		if i := strings.IndexByte(elem, ';'); i >= 0 {
			coding = elem[:i]
		}
		switch strings.ToLower(strings.TrimSpace(coding)) {
		case "gzip", "x-gzip":
			return !refusedByQ(elem)
		}
	}
	return false
}

// etagMatch reports whether an If-None-Match header matches the given
// strong ETag: "*", or any member of the comma-separated list (weak
// validators compare by opaque tag, per RFC 9110's weak comparison).
func etagMatch(header, etag string) bool {
	for header != "" {
		var c string
		if i := strings.IndexByte(header, ','); i >= 0 {
			c, header = header[:i], header[i+1:]
		} else {
			c, header = header, ""
		}
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == "*" || c == etag {
			return true
		}
	}
	return false
}

// handleStats serves GET /stats (cold path, encoding/json). The stable
// schema is the "store" object: every backend flavour nests its
// aggregate counters under the same key, mirroring the follower's
// {"sync","store"} document, so a scraper reads .store.queries without
// caring which binary answered. The legacy flat copy of the same
// fields is spliced in alongside for one release — see the deprecation
// note in DESIGN.md's Observability section.
func (s *Server) handleStats(w http.ResponseWriter) {
	body, err := json.Marshal(s.b.Stats())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// {"store":{…},…flat copy…}\n — body is "{…}", so its interior
	// (body[1:]) supplies the deprecated top-level fields verbatim.
	out := make([]byte, 0, 2*len(body)+len(`{"store":,`)+1)
	out = append(out, `{"store":`...)
	out = append(out, body...)
	out = append(out, ',')
	out = append(out, body[1:]...)
	out = append(out, '\n')
	writeJSON(w, out)
}

// handleHealthz serves GET /healthz: 200 {"status":"serving",…} once
// every key-owning shard has published, 503 before — so "poll until
// healthz is 200" is a complete readiness check for the CI smoke and
// for orchestrators. The 503 body names the condition: "empty" when
// nothing has published, "degraded" when some shards serve and others
// are still pending (a store mid-first-round), with the pending count —
// an operator reading the probe sees which failure they have, not a
// bare status code.
func (s *Server) handleHealthz(w http.ResponseWriter) {
	st := s.b.Stats()
	status := "serving"
	if !st.Serving {
		status = "empty"
		if st.Publishes > 0 {
			status = "degraded"
		}
	}
	bb := bufPool.Get().(*buffers)
	b := append(bb.out[:0], `{"status":"`...)
	b = append(b, status...)
	b = append(b, `","shards":`...)
	b = strconv.AppendInt(b, int64(st.Shards), 10)
	if st.PendingShards > 0 {
		b = append(b, `,"pending_shards":`...)
		b = strconv.AppendInt(b, int64(st.PendingShards), 10)
	}
	b = append(b, `,"version":"`...)
	b = append(b, st.Version...)
	b = append(b, "\"}\n"...)
	h := w.Header()
	if _, ok := h["Content-Type"]; !ok {
		h["Content-Type"] = jsonCT
	}
	if !st.Serving {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	w.Write(b)
	bb.out = b
	bufPool.Put(bb)
}

// handleVersion serves GET /version: the serving version tag and shard
// count, 200 whether or not anything has published (version "0"s until
// then).
func (s *Server) handleVersion(w http.ResponseWriter) {
	st := s.b.Stats()
	bb := bufPool.Get().(*buffers)
	b := append(bb.out[:0], `{"version":"`...)
	b = append(b, st.Version...)
	b = append(b, `","shards":`...)
	b = strconv.AppendInt(b, int64(st.Shards), 10)
	b = append(b, "}\n"...)
	writeJSON(w, b)
	bb.out = b
	bufPool.Put(bb)
}

// readCappedBody is the one body-cap gate every POST endpoint (/at,
// /strongest, /observe) shares: the declared Content-Length and the
// actual bytes are both held to MaxBatchBytes (413 over it, 400 on a
// read fault), and the body lands in the pooled request buffer. ok is
// false when a response has already been written.
func (s *Server) readCappedBody(w http.ResponseWriter, r *http.Request, bb *buffers) ([]byte, bool) {
	if r.ContentLength > s.maxBytes {
		http.Error(w, fmt.Sprintf("remserve: batch body exceeds %d bytes", s.maxBytes), http.StatusRequestEntityTooLarge)
		return nil, false
	}
	body, err := readBody(bb.body[:0], r.Body, s.maxBytes)
	bb.body = body[:0]
	if err != nil {
		if errors.Is(err, errBodyTooLarge) {
			http.Error(w, fmt.Sprintf("remserve: batch body exceeds %d bytes", s.maxBytes), http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return nil, false
	}
	return body, true
}

// errBodyTooLarge marks a request body over the configured cap.
var errBodyTooLarge = errors.New("remserve: request body too large")

// readBody appends the request body into dst, refusing bodies longer
// than maxBytes — without the per-request wrapper allocation
// http.MaxBytesReader would cost the hot batch path. The reused dst
// capacity bounds each read, so an over-cap (or unbounded chunked)
// body is detected within one buffer growth of the cap.
func readBody(dst []byte, r io.Reader, maxBytes int64) ([]byte, error) {
	for {
		if int64(len(dst)) > maxBytes {
			return dst, errBodyTooLarge
		}
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			if int64(len(dst)) > maxBytes {
				return dst, errBodyTooLarge
			}
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// queryParams scans a raw query string in place: key (when wantKey),
// x, y required, z optional (0 — the store clamps into the volume
// anyway). Unescaping allocates only for values that actually contain
// %-escapes or '+', so plain requests parse allocation-free. Coordinates
// must be finite.
func queryParams(raw string, wantKey bool) (string, geom.Vec3, error) {
	var key string
	var p geom.Vec3
	var haveKey, haveX, haveY bool
	for raw != "" {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		if seg == "" {
			continue
		}
		name, val := seg, ""
		if i := strings.IndexByte(seg, '='); i >= 0 {
			name, val = seg[:i], seg[i+1:]
		}
		switch name {
		case "key":
			k, err := unescape(val)
			if err != nil {
				return "", geom.Vec3{}, fmt.Errorf("remserve: bad key escaping: %w", err)
			}
			key, haveKey = k, true
		case "x":
			v, err := parseCoord(name, val)
			if err != nil {
				return "", geom.Vec3{}, err
			}
			p.X, haveX = v, true
		case "y":
			v, err := parseCoord(name, val)
			if err != nil {
				return "", geom.Vec3{}, err
			}
			p.Y, haveY = v, true
		case "z":
			v, err := parseCoord(name, val)
			if err != nil {
				return "", geom.Vec3{}, err
			}
			p.Z = v
		}
	}
	if wantKey && !haveKey {
		return "", geom.Vec3{}, errors.New(`remserve: missing "key" parameter`)
	}
	if !haveX || !haveY {
		return "", geom.Vec3{}, errors.New(`remserve: missing "x"/"y" parameters`)
	}
	return key, p, nil
}

// parseCoord decodes one coordinate under standard query semantics —
// %-escapes resolve and '+' means space, so a correctly encoded
// exponent sign arrives as "%2B" ("x=1e%2B5" parses, a literal
// "x=1e+5" is "1e 5" and fails) — then requires a finite float. The
// unescape fast path keeps plain numbers allocation-free.
func parseCoord(name, val string) (float64, error) {
	val, err := unescape(val)
	if err != nil {
		return 0, fmt.Errorf("remserve: bad %s escaping: %w", name, err)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("remserve: bad %s %q", name, val)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("remserve: %s %q is not finite", name, val)
	}
	return v, nil
}

// unescape resolves %-escapes and '+' in a query value; the common case
// (a plain MAC key — hex and colons) is returned as a zero-copy
// substring.
func unescape(val string) (string, error) {
	if !strings.ContainsAny(val, "%+") {
		return val, nil
	}
	return url.QueryUnescape(val)
}

// appendJSONFloat appends v as a JSON number in strconv 'g' shortest
// round-trip form; non-finite values (unrepresentable in JSON) become
// null.
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString appends s as a JSON string. Keys are MAC-shaped (hex
// digits and colons), so the fast path copies bytes between quotes;
// anything needing escapes falls back to encoding/json.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			enc, err := json.Marshal(s)
			if err != nil {
				// A Go string always marshals; keep the signature total.
				return append(append(append(b, '"'), []byte("?")...), '"')
			}
			return append(b, enc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}
