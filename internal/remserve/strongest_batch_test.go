package remserve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remstore"
)

// postBody POSTs body with the given Content-Type and Accept headers and
// returns status, headers and response body.
func postBody(t testing.TB, url, contentType, accept, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, r.Header, out
}

// TestStrongestBatchRule8 pins the batch best-server endpoint across
// shard counts 1, 2 and 4: the JSON response renders exactly the keys
// and value bits StrongestBatch returns (which rule 8 ties to the
// monolithic map), the binary "REMW" response decodes to the identical
// keys and bit-identical values, and all four codec pairings agree.
func TestStrongestBatchRule8(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			ss, mono, _ := newServedShards(t, 9, shards)
			srv := httptest.NewServer(NewSharded(ss, Options{}))
			defer srv.Close()

			pts := testPoints()
			wantKeys, wantVals, err := ss.StrongestBatch(pts)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pts {
				mk, mv := mono.Strongest(p)
				if mk != wantKeys[i] || math.Float64bits(mv) != math.Float64bits(wantVals[i]) {
					t.Fatalf("point %d: sharded (%q, %v) != monolithic (%q, %v)", i, wantKeys[i], wantVals[i], mk, mv)
				}
			}

			// JSON request, JSON response: byte-exact against an
			// independently rendered body (version is 0 on a sharded
			// backend — a batch may span shard snapshots).
			var jb bytes.Buffer
			jb.WriteString(`{"points":[`)
			for i, p := range pts {
				if i > 0 {
					jb.WriteByte(',')
				}
				fmt.Fprintf(&jb, "[%g,%g,%g]", p.X, p.Y, p.Z)
			}
			jb.WriteString(`]}`)
			status, hdr, body := postBody(t, srv.URL+"/strongest", "application/json", "", jb.String())
			if status != 200 || hdr.Get("Content-Type") != "application/json" {
				t.Fatalf("JSON POST /strongest: status %d type %q: %s", status, hdr.Get("Content-Type"), body)
			}
			var want bytes.Buffer
			want.WriteString(`{"keys":[`)
			for i, k := range wantKeys {
				if i > 0 {
					want.WriteByte(',')
				}
				fmt.Fprintf(&want, "%q", k)
			}
			want.WriteString(`],"values":[`)
			for i, v := range wantVals {
				if i > 0 {
					want.WriteByte(',')
				}
				want.WriteString(wireFloat(v))
			}
			want.WriteString("],\"version\":0}\n")
			if !bytes.Equal(body, want.Bytes()) {
				t.Fatalf("JSON body:\n got %s\nwant %s", body, want.Bytes())
			}

			// Binary request, binary response: the REMW pairs hold the
			// identical keys and bit-identical value floats.
			reqWire := AppendStrongestRequest(nil, pts)
			status, hdr, body = postBody(t, srv.URL+"/strongest", WireContentType, WireContentType, string(reqWire))
			if status != 200 || hdr.Get("Content-Type") != WireContentType {
				t.Fatalf("binary POST /strongest: status %d type %q: %s", status, hdr.Get("Content-Type"), body)
			}
			gotKeys, gotVals, ver, err := DecodeStrongestResponse(body)
			if err != nil {
				t.Fatal(err)
			}
			if ver != 0 {
				t.Fatalf("sharded binary response version %d, want 0", ver)
			}
			if len(gotKeys) != len(pts) {
				t.Fatalf("binary response has %d pairs, want %d", len(gotKeys), len(pts))
			}
			for i := range pts {
				if gotKeys[i] != wantKeys[i] || math.Float64bits(gotVals[i]) != math.Float64bits(wantVals[i]) {
					t.Fatalf("pair %d: binary (%q, %v) != direct (%q, %v)", i, gotKeys[i], gotVals[i], wantKeys[i], wantVals[i])
				}
			}

			// Cross pairings: JSON request + binary response, and binary
			// request + JSON response, agree with their same-codec twins.
			_, _, crossBin := postBody(t, srv.URL+"/strongest", "application/json", WireContentType, jb.String())
			if !bytes.Equal(crossBin, body) {
				t.Fatal("JSON-request binary response differs from binary-request binary response")
			}
			_, _, crossJSON := postBody(t, srv.URL+"/strongest", WireContentType, "", string(reqWire))
			if !bytes.Equal(crossJSON, want.Bytes()) {
				t.Fatal("binary-request JSON response differs from JSON-request JSON response")
			}
		})
	}
}

// TestStrongestBatchMonolithicVersion: a monolithic backend reports the
// serving snapshot version on the batch response, and the decoded JSON
// matches per-point GET /strongest answers.
func TestStrongestBatchMonolithicVersion(t *testing.T) {
	keys := testKeys(5)
	st := remstore.New(2)
	m, err := rem.BuildMapBatch(testVolume(), 8, 6, 4, keys, testPredict, rem.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(m, len(keys)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewStore(st, Options{}))
	defer srv.Close()

	status, _, body := postBody(t, srv.URL+"/strongest", "application/json", "", `{"points":[[1,1,1],[3,2,0.5]]}`)
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		Keys    []string  `json:"keys"`
		Values  []float64 `json:"values"`
		Version uint64    `json:"version"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Version != st.Current().Version() {
		t.Fatalf("batch version %d, serving %d", resp.Version, st.Current().Version())
	}
	if len(resp.Keys) != 2 || len(resp.Values) != 2 {
		t.Fatalf("response arity: %d keys, %d values", len(resp.Keys), len(resp.Values))
	}
	for i, p := range []geom.Vec3{geom.V(1, 1, 1), geom.V(3, 2, 0.5)} {
		wk, wv, _, err := st.Strongest(p)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Keys[i] != wk || math.Float64bits(resp.Values[i]) != math.Float64bits(wv) {
			t.Fatalf("point %d: batch (%q, %v) != Strongest (%q, %v)", i, resp.Keys[i], resp.Values[i], wk, wv)
		}
	}
}

// TestDeltaGzip pins the compressed delta: Accept-Encoding: gzip on
// GET /delta answers a gzip stream whose decompressed bytes are exactly
// the identity REMD message (CRC trailer included), under the same ETag
// and delta headers, with Vary: Accept-Encoding on both encodings. The
// full-snapshot fallback compresses the same way.
func TestDeltaGzip(t *testing.T) {
	keys := testKeys(5)
	st := remstore.New(4)
	m1, err := rem.BuildMapBatch(testVolume(), 8, 6, 4, keys, testPredict, rem.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(m1, len(keys)); err != nil {
		t.Fatal(err)
	}
	m2, err := m1.RebuildKeys([]int{1, 3}, testPredict2, rem.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish(m2, 2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewStore(st, Options{}))
	defer srv.Close()

	// Identity delta: the reference REMD bytes.
	status, idHdr, identity := get(t, srv.URL+"/delta?from=1")
	if status != 200 || idHdr.Get("Content-Type") != DeltaContentType {
		t.Fatalf("identity delta: status %d type %q", status, idHdr.Get("Content-Type"))
	}
	if v := idHdr.Get("Vary"); v != "Accept-Encoding" {
		t.Fatalf("identity Vary %q, want Accept-Encoding", v)
	}

	gzGet := func(path string) (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Setting Accept-Encoding by hand disables Go's transparent
		// decompression, so the body is the raw gzip stream.
		req.Header.Set("Accept-Encoding", "gzip")
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return r, body
	}
	gunzip := func(data []byte) []byte {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		return plain
	}

	r, compressed := gzGet("/delta?from=1")
	if r.StatusCode != 200 || r.Header.Get("Content-Type") != DeltaContentType {
		t.Fatalf("gzip delta: status %d type %q", r.StatusCode, r.Header.Get("Content-Type"))
	}
	if ce := r.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", ce)
	}
	if v := r.Header.Get("Vary"); v != "Accept-Encoding" {
		t.Fatalf("gzip Vary %q, want Accept-Encoding", v)
	}
	if r.Header.Get("ETag") != idHdr.Get("ETag") || r.Header.Get("X-REM-Delta-Base") != "1" {
		t.Fatalf("gzip delta headers = %v", r.Header)
	}
	if !bytes.Equal(gunzip(compressed), identity) {
		t.Fatal("decompressed delta differs from identity REMD bytes")
	}
	if applied, err := rem.ApplyDelta(m1, gunzip(compressed)); err != nil || !applied.Equal(m2) {
		t.Fatalf("decompressed delta does not apply to the serving generation: %v", err)
	}

	// The full-snapshot fallback (unknown base) compresses identically.
	_, _, fullIdentity := get(t, srv.URL+"/delta?from=99")
	r, compressed = gzGet("/delta?from=99")
	if r.StatusCode != 200 || r.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("gzip fallback: status %d type %q", r.StatusCode, r.Header.Get("Content-Type"))
	}
	if ce := r.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("fallback Content-Encoding %q, want gzip", ce)
	}
	if !bytes.Equal(gunzip(compressed), fullIdentity) {
		t.Fatal("decompressed fallback differs from identity snapshot bytes")
	}
}
