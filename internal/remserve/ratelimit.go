package remserve

import (
	"math"
	"net"
	"sync"
	"time"
)

// Per-client token-bucket rate limiting, off by default. Each client —
// keyed by the host part of RemoteAddr, so every port of one origin
// shares a budget — owns a bucket that refills at RPS tokens per second
// up to Burst; a request spends one token, and an empty bucket answers
// 429 with a Retry-After naming the seconds until the next token
// accrues. The clock is injectable (RateLimit.Now) so the refill
// arithmetic is testable without sleeping, and the bucket map is
// bounded: past MaxClients the fully-refilled (idle) buckets are
// evicted first — an evicted client merely starts over with a fresh
// burst, so eviction can never wrongly throttle anyone.

// RateLimit configures per-client request throttling. The zero value
// disables it entirely.
type RateLimit struct {
	// RPS is the sustained per-client request rate (tokens per second);
	// ≤ 0 disables rate limiting.
	RPS float64
	// Burst is the bucket depth — how many requests a quiet client may
	// issue back to back (≤ 0 means ceil(RPS), at least 1).
	Burst int
	// Now supplies the clock (nil means time.Now); injectable for
	// deterministic tests.
	Now func() time.Time
	// MaxClients bounds the bucket map (≤ 0 means
	// DefaultRateLimitClients).
	MaxClients int
}

// DefaultRateLimitClients bounds the per-client bucket map when
// RateLimit.MaxClients is unset.
const DefaultRateLimitClients = 4096

// bucket is one client's token balance at its last refill instant.
type bucket struct {
	tokens float64
	last   time.Time
}

// limiter is the shared token-bucket state behind ServeHTTP's gate.
type limiter struct {
	rps        float64
	burst      float64
	now        func() time.Time
	maxClients int

	mu      sync.Mutex
	buckets map[string]*bucket
}

// newLimiter builds a limiter, or nil when cfg disables limiting.
func newLimiter(cfg RateLimit) *limiter {
	if cfg.RPS <= 0 {
		return nil
	}
	burst := float64(cfg.Burst)
	if cfg.Burst <= 0 {
		burst = math.Ceil(cfg.RPS)
	}
	if burst < 1 {
		burst = 1
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	maxClients := cfg.MaxClients
	if maxClients <= 0 {
		maxClients = DefaultRateLimitClients
	}
	return &limiter{
		rps:        cfg.RPS,
		burst:      burst,
		now:        now,
		maxClients: maxClients,
		buckets:    make(map[string]*bucket),
	}
}

// allow spends one token from addr's bucket. When the bucket is empty
// it reports ok=false and the whole seconds (rounded up, at least 1 —
// Retry-After has one-second resolution) until a full token accrues.
func (l *limiter) allow(addr string) (ok bool, retryAfter int) {
	key := clientKey(addr)
	t := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= l.maxClients {
			l.evictLocked(t)
		}
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[key] = b
	} else {
		if dt := t.Sub(b.last).Seconds(); dt > 0 {
			b.tokens = math.Min(l.burst, b.tokens+dt*l.rps)
		}
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / l.rps
	retryAfter = int(math.Ceil(wait))
	if retryAfter < 1 {
		retryAfter = 1
	}
	return false, retryAfter
}

// evictLocked frees map space: first every bucket that has fully
// refilled (idle clients, who lose nothing by re-entering with a fresh
// burst), then — if every client is mid-burst — arbitrary entries, so
// the map can never exceed its bound no matter the traffic shape.
func (l *limiter) evictLocked(t time.Time) {
	for k, b := range l.buckets {
		if b.tokens+t.Sub(b.last).Seconds()*l.rps >= l.burst {
			delete(l.buckets, k)
		}
	}
	for k := range l.buckets {
		if len(l.buckets) < l.maxClients {
			break
		}
		delete(l.buckets, k)
	}
}

// clientKey reduces a RemoteAddr to its host so all connections from
// one origin share a bucket; addresses without a port (tests, exotic
// transports) key as-is.
func clientKey(addr string) string {
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}
