package remserve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/remobs"
)

// scrape fetches /metrics, validates the exposition with the package's
// own checker, and returns the body.
func scrape(t testing.TB, base string) string {
	t.Helper()
	status, hdr, body := get(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics Content-Type %q", ct)
	}
	if err := remobs.CheckExposition(body); err != nil {
		t.Fatalf("GET /metrics exposition: %v\n%s", err, body)
	}
	return string(body)
}

// sampleValue extracts one sample's value from an exposition body;
// series is the exact rendered form ("name" or `name{a="b",…}` with
// labels sorted by name). Returns 0, false when absent.
func sampleValue(body, series string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// TestMetricsEndToEnd drives mixed traffic through an instrumented
// server and asserts the scrape is valid and the cube advances: the
// per-(endpoint, wire, code) request counters, the latency histogram
// counts and the store-level query counter all move by exactly the
// traffic sent.
func TestMetricsEndToEnd(t *testing.T) {
	obs := remobs.New(0)
	ss, _, keys := newServedShards(t, 5, 2)
	ss.SetObserver(obs)
	srv := httptest.NewServer(NewSharded(ss, Options{Observer: obs}))
	defer srv.Close()

	before := scrape(t, srv.URL)

	atJSON := 3
	for i := 0; i < atJSON; i++ {
		status, _, _ := get(t, fmt.Sprintf("%s/at?key=%s&x=1&y=1&z=1", srv.URL, keys[0]))
		if status != http.StatusOK {
			t.Fatalf("GET /at: status %d", status)
		}
	}
	atBinary := 2
	for i := 0; i < atBinary; i++ {
		body := AppendBatchRequest(nil, keys[1], testPoints())
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/at", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", WireContentType)
		req.Header.Set("Accept", WireContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /at (binary): status %d", resp.StatusCode)
		}
	}
	if status, _, _ := get(t, srv.URL+"/at?key=no:such:key&x=1&y=1&z=1"); status != http.StatusNotFound {
		t.Fatalf("GET /at unknown key: status %d", status)
	}

	after := scrape(t, srv.URL)
	delta := func(series string) float64 {
		b, _ := sampleValue(before, series)
		a, ok := sampleValue(after, series)
		if !ok {
			t.Fatalf("series %s missing from scrape:\n%s", series, after)
		}
		return a - b
	}
	if got := delta(`rem_http_requests_total{code="2xx",endpoint="at",wire="json"}`); got != float64(atJSON) {
		t.Errorf("json /at 2xx advanced by %g, want %d", got, atJSON)
	}
	if got := delta(`rem_http_requests_total{code="2xx",endpoint="at",wire="binary"}`); got != float64(atBinary) {
		t.Errorf("binary /at 2xx advanced by %g, want %d", got, atBinary)
	}
	if got := delta(`rem_http_requests_total{code="4xx",endpoint="at",wire="json"}`); got != 1 {
		t.Errorf("json /at 4xx advanced by %g, want 1", got)
	}
	if got := delta(`rem_http_request_seconds_count{endpoint="at",wire="json"}`); got != float64(atJSON)+1 {
		t.Errorf("/at json latency count advanced by %g, want %d", got, atJSON+1)
	}
	// Store-level: each GET /at is one logical query; each binary batch
	// adds one per point.
	wantQueries := float64(atJSON + atBinary*len(testPoints()))
	if got := delta(`rem_store_queries_total`); got != wantQueries {
		t.Errorf("rem_store_queries_total advanced by %g, want %g", got, wantQueries)
	}
	// The pruning-ratio gauge is present and sane on a published store.
	if v, ok := sampleValue(after, `rem_store_coverindex_candidate_ratio`); !ok || v <= 0 || v > 1 {
		t.Errorf("rem_store_coverindex_candidate_ratio = %g, ok=%v; want (0, 1]", v, ok)
	}
}

// TestMetricsWithoutObserver pins the read-only posture: a server built
// without an Observer does not reveal a /metrics surface.
func TestMetricsWithoutObserver(t *testing.T) {
	ss, _, _ := newServedShards(t, 3, 1)
	srv := httptest.NewServer(NewSharded(ss, Options{}))
	defer srv.Close()
	if status, _, _ := get(t, srv.URL+"/metrics"); status != http.StatusNotFound {
		t.Fatalf("GET /metrics without observer: status %d, want 404", status)
	}
}

// TestMetricsConcurrentScrape hammers the instrumented query path from
// several goroutines while continuously scraping and re-validating the
// exposition — the -race run of this test is the data-race check, and
// the checker's histogram invariant (+Inf == _count per scrape) is the
// torn-read check.
func TestMetricsConcurrentScrape(t *testing.T) {
	obs := remobs.New(0)
	ss, _, keys := newServedShards(t, 5, 2)
	ss.SetObserver(obs)
	srv := NewSharded(ss, Options{Observer: obs})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet,
				fmt.Sprintf("/at?key=%s&x=1&y=1&z=1", keys[g%len(keys)]), nil)
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("GET /at: status %d", w.Code)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("GET /metrics: status %d", w.Code)
		}
		if err := remobs.CheckExposition(w.Body.Bytes()); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// nullRW is a minimal ResponseWriter with a reusable header map, so an
// allocation test sees only the handler's own allocations.
type nullRW struct {
	h    http.Header
	code int
}

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullRW) WriteHeader(c int)           { w.code = c }

// rewindBody is a reusable request body: Close is a no-op and rewind
// seeks back to the start, so one request value can be served many
// times without per-iteration allocation.
type rewindBody struct{ r bytes.Reader }

func (b *rewindBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *rewindBody) Close() error               { return nil }
func (b *rewindBody) rewind()                    { b.r.Seek(0, io.SeekStart) }

// TestInstrumentedServeZeroAlloc pins the acceptance bound: with an
// Observer attached (counter cube, latency histograms, pooled status
// recorder), GET /at and POST /at over the binary wire still allocate
// nothing per request after warm-up.
func TestInstrumentedServeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	obs := remobs.New(0)
	ss, _, keys := newServedShards(t, 5, 2)
	ss.SetObserver(obs)
	srv := NewSharded(ss, Options{Observer: obs})

	getReq := httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/at?key=%s&x=1&y=1&z=1", keys[0]), nil)
	body := &rewindBody{}
	body.r.Reset(AppendBatchRequest(nil, keys[1], testPoints()))
	postReq := httptest.NewRequest(http.MethodPost, "/at", nil)
	postReq.Body = body
	postReq.ContentLength = int64(body.r.Size())
	postReq.Header.Set("Content-Type", WireContentType)
	postReq.Header.Set("Accept", WireContentType)

	w := &nullRW{h: make(http.Header)}
	serveGet := func() {
		w.code = 0
		srv.ServeHTTP(w, getReq)
		if w.code != 0 && w.code != http.StatusOK {
			t.Fatalf("GET /at: status %d", w.code)
		}
	}
	servePost := func() {
		w.code = 0
		body.rewind()
		srv.ServeHTTP(w, postReq)
		if w.code != 0 && w.code != http.StatusOK {
			t.Fatalf("POST /at: status %d", w.code)
		}
	}
	for i := 0; i < 50; i++ {
		serveGet()
		servePost()
	}
	if allocs := testing.AllocsPerRun(200, serveGet); allocs != 0 {
		t.Errorf("instrumented GET /at: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, servePost); allocs != 0 {
		t.Errorf("instrumented POST /at (binary): %v allocs/op, want 0", allocs)
	}
}
