package geom

import (
	"math"
	"testing"
)

func TestNewCuboidValidation(t *testing.T) {
	if _, err := NewCuboid(V(0, 0, 0), -1, 1, 1); err == nil {
		t.Error("negative extent accepted")
	}
	if _, err := NewCuboid(V(0, 0, 0), 1, 0, 1); err == nil {
		t.Error("zero extent accepted")
	}
	c, err := NewCuboid(V(1, 2, 3), 2, 3, 4)
	if err != nil {
		t.Fatalf("valid cuboid rejected: %v", err)
	}
	if c.Max != V(3, 5, 7) {
		t.Errorf("Max = %v", c.Max)
	}
}

func TestPaperScanVolume(t *testing.T) {
	c := PaperScanVolume()
	s := c.Size()
	if !almostEq(s.X, 3.74, 1e-12) || !almostEq(s.Y, 3.20, 1e-12) || !almostEq(s.Z, 2.10, 1e-12) {
		t.Errorf("paper volume size = %v, want (3.74, 3.20, 2.10)", s)
	}
	wantVol := 3.74 * 3.20 * 2.10
	if !almostEq(c.Volume(), wantVol, 1e-9) {
		t.Errorf("Volume = %v, want %v", c.Volume(), wantVol)
	}
}

func TestCuboidContainsAndClamp(t *testing.T) {
	c := MustCuboid(V(0, 0, 0), 1, 1, 1)
	if !c.Contains(V(0.5, 0.5, 0.5)) {
		t.Error("centre not contained")
	}
	if !c.Contains(V(0, 0, 0)) || !c.Contains(V(1, 1, 1)) {
		t.Error("bounds must be inclusive")
	}
	if c.Contains(V(1.01, 0.5, 0.5)) {
		t.Error("outside point contained")
	}
	if got := c.Clamp(V(2, -1, 0.5)); got != V(1, 0, 0.5) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestCuboidCorners(t *testing.T) {
	c := MustCuboid(V(0, 0, 0), 1, 2, 3)
	corners := c.Corners()
	if len(corners) != 8 {
		t.Fatalf("corner count = %d", len(corners))
	}
	seen := map[Vec3]bool{}
	for _, p := range corners {
		if seen[p] {
			t.Errorf("duplicate corner %v", p)
		}
		seen[p] = true
		if !c.Contains(p) {
			t.Errorf("corner %v not contained", p)
		}
	}
}

func TestLatticeCountsAndBounds(t *testing.T) {
	c := PaperScanVolume()
	pts, err := c.Lattice(4, 3, 6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 72 {
		t.Fatalf("lattice size = %d, want 72 (the paper's waypoint count)", len(pts))
	}
	const tol = 1e-9
	lo := c.Min.Add(V(0.3, 0.3, 0.3))
	hi := c.Max.Sub(V(0.3, 0.3, 0.3))
	for _, p := range pts {
		if p.X < lo.X-tol || p.X > hi.X+tol ||
			p.Y < lo.Y-tol || p.Y > hi.Y+tol ||
			p.Z < lo.Z-tol || p.Z > hi.Z+tol {
			t.Errorf("waypoint %v violates margin", p)
		}
	}
	seen := map[Vec3]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Errorf("duplicate waypoint %v", p)
		}
		seen[p] = true
	}
}

func TestLatticeSinglePointIsCentered(t *testing.T) {
	c := MustCuboid(V(0, 0, 0), 2, 2, 2)
	pts, err := c.Lattice(1, 1, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || !vecAlmostEq(pts[0], V(1, 1, 1), 1e-12) {
		t.Errorf("single-point lattice = %v", pts)
	}
}

func TestLatticeErrors(t *testing.T) {
	c := MustCuboid(V(0, 0, 0), 1, 1, 1)
	if _, err := c.Lattice(0, 1, 1, 0); err == nil {
		t.Error("zero-count lattice accepted")
	}
	if _, err := c.Lattice(2, 2, 2, 0.6); err == nil {
		t.Error("oversized margin accepted")
	}
}

func TestLatticeBoustrophedonIsShorterThanRowOrder(t *testing.T) {
	c := PaperScanVolume()
	pts, err := c.Lattice(4, 3, 6, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// A naive row-major ordering would retrace the full x extent on every
	// row change; the lawnmower ordering must beat it.
	naive := make([]Vec3, len(pts))
	copy(naive, pts)
	// Reconstruct naive ordering by sorting z, then y, then x.
	for i := 0; i < len(naive); i++ {
		for j := i + 1; j < len(naive); j++ {
			a, b := naive[i], naive[j]
			if b.Z < a.Z || (b.Z == a.Z && (b.Y < a.Y || (b.Y == a.Y && b.X < a.X))) {
				naive[i], naive[j] = naive[j], naive[i]
			}
		}
	}
	if PathLength(pts) >= PathLength(naive) {
		t.Errorf("lawnmower path %.2f m not shorter than naive %.2f m", PathLength(pts), PathLength(naive))
	}
}

func TestSplitRoundRobin(t *testing.T) {
	c := PaperScanVolume()
	pts, _ := c.Lattice(4, 3, 6, 0.3)
	parts, err := SplitRoundRobin(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || len(parts[0]) != 36 || len(parts[1]) != 36 {
		t.Fatalf("split sizes = %d/%d, want 36/36 per the paper", len(parts[0]), len(parts[1]))
	}
	// Order must be preserved and the union must be the original set.
	i := 0
	for _, part := range parts {
		for _, p := range part {
			if p != pts[i] {
				t.Fatalf("order not preserved at %d", i)
			}
			i++
		}
	}
}

func TestSplitRoundRobinUneven(t *testing.T) {
	pts := []Vec3{V(1, 0, 0), V(2, 0, 0), V(3, 0, 0), V(4, 0, 0), V(5, 0, 0)}
	parts, err := SplitRoundRobin(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts[0]) != 2 || len(parts[1]) != 2 || len(parts[2]) != 1 {
		t.Errorf("uneven split sizes = %d/%d/%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	if _, err := SplitRoundRobin(pts, 0); err == nil {
		t.Error("zero-way split accepted")
	}
}

func TestPathLength(t *testing.T) {
	if got := PathLength(nil); got != 0 {
		t.Errorf("empty path length = %v", got)
	}
	if got := PathLength([]Vec3{V(0, 0, 0)}); got != 0 {
		t.Errorf("single-point path length = %v", got)
	}
	pts := []Vec3{V(0, 0, 0), V(3, 4, 0), V(3, 4, 2)}
	if !almostEq(PathLength(pts), 7, 1e-12) {
		t.Errorf("path length = %v, want 7", PathLength(pts))
	}
}

func TestLatticeCoordinateCoverage(t *testing.T) {
	// Every lattice must include points at both margin extremes on each axis.
	c := MustCuboid(V(0, 0, 0), 4, 4, 4)
	pts, err := c.Lattice(3, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
	}
	if !almostEq(minX, 1, 1e-12) || !almostEq(maxX, 3, 1e-12) {
		t.Errorf("x coverage [%v, %v], want [1, 3]", minX, maxX)
	}
}
