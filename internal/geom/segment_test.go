package geom

import "testing"

func TestRectNormal(t *testing.T) {
	cases := []struct {
		name string
		r    Rect
		want int
	}{
		{"x-wall", Rect{V(1, 0, 0), V(1, 2, 3)}, 0},
		{"y-wall", Rect{V(0, 1, 0), V(2, 1, 3)}, 1},
		{"z-floor", Rect{V(0, 0, 1), V(2, 3, 1)}, 2},
		{"degenerate-line", Rect{V(0, 0, 0), V(0, 0, 3)}, -1},
		{"full-box", Rect{V(0, 0, 0), V(1, 1, 1)}, -1},
	}
	for _, tc := range cases {
		if got := tc.r.Normal(); got != tc.want {
			t.Errorf("%s: Normal = %d, want %d", tc.name, got, tc.want)
		}
		if tc.r.Valid() != (tc.want >= 0) {
			t.Errorf("%s: Valid inconsistent with Normal", tc.name)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	wall := Rect{V(1, 0, 0), V(1, 2, 2)} // x=1 plane, y∈[0,2], z∈[0,2]

	// Straight crossing.
	tHit, ok := wall.Intersects(Segment{V(0, 1, 1), V(2, 1, 1)})
	if !ok || !almostEq(tHit, 0.5, 1e-12) {
		t.Errorf("crossing: ok=%v t=%v", ok, tHit)
	}

	// Segment stops before the wall.
	if _, ok := wall.Intersects(Segment{V(0, 1, 1), V(0.9, 1, 1)}); ok {
		t.Error("short segment should not intersect")
	}

	// Segment passes beside the wall panel (outside its y bounds).
	if _, ok := wall.Intersects(Segment{V(0, 3, 1), V(2, 3, 1)}); ok {
		t.Error("segment outside panel bounds should not intersect")
	}

	// Parallel segment in the wall plane is not a crossing.
	if _, ok := wall.Intersects(Segment{V(1, 0.5, 0.5), V(1, 1.5, 1.5)}); ok {
		t.Error("in-plane segment should not count as a crossing")
	}

	// Diagonal crossing.
	tHit, ok = wall.Intersects(Segment{V(0, 0, 0), V(2, 2, 2)})
	if !ok || !almostEq(tHit, 0.5, 1e-12) {
		t.Errorf("diagonal: ok=%v t=%v", ok, tHit)
	}

	// Reverse direction must intersect identically.
	tHit, ok = wall.Intersects(Segment{V(2, 1, 1), V(0, 1, 1)})
	if !ok || !almostEq(tHit, 0.5, 1e-12) {
		t.Errorf("reverse: ok=%v t=%v", ok, tHit)
	}
}

func TestRectIntersectsEndpointOnWall(t *testing.T) {
	wall := Rect{V(1, 0, 0), V(1, 2, 2)}
	// A segment that ends exactly on the wall counts as touching (t=1).
	tHit, ok := wall.Intersects(Segment{V(0, 1, 1), V(1, 1, 1)})
	if !ok || !almostEq(tHit, 1, 1e-12) {
		t.Errorf("endpoint touch: ok=%v t=%v", ok, tHit)
	}
}

func TestRectIntersectsInvalidRect(t *testing.T) {
	bad := Rect{V(0, 0, 0), V(1, 1, 1)}
	if _, ok := bad.Intersects(Segment{V(-1, 0.5, 0.5), V(2, 0.5, 0.5)}); ok {
		t.Error("invalid rect must never intersect")
	}
}

func TestSegmentAtAndLength(t *testing.T) {
	s := Segment{V(0, 0, 0), V(2, 0, 0)}
	if got := s.Length(); got != 2 {
		t.Errorf("Length = %v", got)
	}
	if got := s.At(0.25); got != V(0.5, 0, 0) {
		t.Errorf("At(0.25) = %v", got)
	}
}

func TestRectIntersectsYAndZWalls(t *testing.T) {
	yWall := Rect{V(0, 1, 0), V(2, 1, 2)}
	if _, ok := yWall.Intersects(Segment{V(1, 0, 1), V(1, 2, 1)}); !ok {
		t.Error("y-wall crossing missed")
	}
	zFloor := Rect{V(0, 0, 1), V(2, 2, 1)}
	if _, ok := zFloor.Intersects(Segment{V(1, 1, 0), V(1, 1, 2)}); !ok {
		t.Error("z-floor crossing missed")
	}
	if _, ok := zFloor.Intersects(Segment{V(5, 5, 0), V(5, 5, 2)}); ok {
		t.Error("z-floor crossing outside bounds accepted")
	}
}
