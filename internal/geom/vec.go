// Package geom provides the small 3-D geometry toolkit used throughout the
// REM toolchain: vectors, axis-aligned cuboids (the scan volumes of the
// paper), waypoint lattices, and segment intersection helpers used by the
// multi-wall propagation model.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3-D space. Units are metres throughout the
// repository unless stated otherwise.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// DistSq returns the squared Euclidean distance between v and w.
func (v Vec3) DistSq(w Vec3) float64 { return v.Sub(w).NormSq() }

// Dist2D returns the horizontal (x/y plane) distance between v and w.
func (v Vec3) Dist2D(w Vec3) float64 {
	dx, dy := v.X-w.X, v.Y-w.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Unit returns v normalised to length 1. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		X: v.X + (w.X-v.X)*t,
		Y: v.Y + (w.Y-v.Y)*t,
		Z: v.Z + (w.Z-v.Z)*t,
	}
}

// Clamp returns v with each component clamped to [lo, hi] component-wise.
func (v Vec3) Clamp(lo, hi Vec3) Vec3 {
	return Vec3{
		X: clamp(v.X, lo.X, hi.X),
		Y: clamp(v.Y, lo.Y, hi.Y),
		Z: clamp(v.Z, lo.Z, hi.Z),
	}
}

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String implements fmt.Stringer with centimetre precision, which is the
// precision level of the paper's UWB localization (§II-B).
func (v Vec3) String() string {
	return fmt.Sprintf("(%.2f, %.2f, %.2f)", v.X, v.Y, v.Z)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
