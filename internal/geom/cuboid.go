package geom

import (
	"errors"
	"fmt"
)

// Cuboid is an axis-aligned rectangular volume, the shape of the scan volume
// used in the paper's validation (3.74 m × 3.20 m × 2.10 m living room).
type Cuboid struct {
	Min, Max Vec3
}

// NewCuboid builds a cuboid from an origin corner and positive extents along
// each axis.
func NewCuboid(origin Vec3, dx, dy, dz float64) (Cuboid, error) {
	if dx <= 0 || dy <= 0 || dz <= 0 {
		return Cuboid{}, fmt.Errorf("geom: cuboid extents must be positive, got (%g, %g, %g)", dx, dy, dz)
	}
	return Cuboid{Min: origin, Max: origin.Add(V(dx, dy, dz))}, nil
}

// MustCuboid is NewCuboid that panics on invalid extents. It is intended for
// package-level construction of well-known volumes in tests and examples.
func MustCuboid(origin Vec3, dx, dy, dz float64) Cuboid {
	c, err := NewCuboid(origin, dx, dy, dz)
	if err != nil {
		panic(err)
	}
	return c
}

// PaperScanVolume returns the exact scan volume of the paper's validation: a
// rectangular cuboid 3.74 m long (x), 3.20 m wide (y) and 2.10 m high (z)
// anchored at the origin.
func PaperScanVolume() Cuboid {
	return MustCuboid(V(0, 0, 0), 3.74, 3.20, 2.10)
}

// Size returns the extents of the cuboid along each axis.
func (c Cuboid) Size() Vec3 { return c.Max.Sub(c.Min) }

// Center returns the geometric centre of the cuboid.
func (c Cuboid) Center() Vec3 { return c.Min.Add(c.Max).Scale(0.5) }

// Volume returns the volume in cubic metres.
func (c Cuboid) Volume() float64 {
	s := c.Size()
	return s.X * s.Y * s.Z
}

// Contains reports whether p lies inside the cuboid (inclusive bounds).
func (c Cuboid) Contains(p Vec3) bool {
	return p.X >= c.Min.X && p.X <= c.Max.X &&
		p.Y >= c.Min.Y && p.Y <= c.Max.Y &&
		p.Z >= c.Min.Z && p.Z <= c.Max.Z
}

// Clamp returns p clamped into the cuboid.
func (c Cuboid) Clamp(p Vec3) Vec3 { return p.Clamp(c.Min, c.Max) }

// Corners returns the 8 corner points of the cuboid. The paper places one
// UWB localization anchor at each corner of the scan volume.
func (c Cuboid) Corners() []Vec3 {
	return []Vec3{
		{c.Min.X, c.Min.Y, c.Min.Z},
		{c.Max.X, c.Min.Y, c.Min.Z},
		{c.Min.X, c.Max.Y, c.Min.Z},
		{c.Max.X, c.Max.Y, c.Min.Z},
		{c.Min.X, c.Min.Y, c.Max.Z},
		{c.Max.X, c.Min.Y, c.Max.Z},
		{c.Min.X, c.Max.Y, c.Max.Z},
		{c.Max.X, c.Max.Y, c.Max.Z},
	}
}

// ErrLatticeTooSmall is returned when a waypoint lattice is requested with
// fewer than one point per axis.
var ErrLatticeTooSmall = errors.New("geom: lattice requires at least one point per axis")

// Lattice generates nx × ny × nz waypoints evenly spread over the cuboid,
// inset from the faces by margin on every axis (the UAVs cannot fly flush
// against walls or the floor). Points are ordered in boustrophedon (lawnmower)
// order within each z-layer, layers bottom-up, so that consecutive waypoints
// are spatially adjacent — minimising flight time exactly as a survey plan
// would.
func (c Cuboid) Lattice(nx, ny, nz int, margin float64) ([]Vec3, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, ErrLatticeTooSmall
	}
	s := c.Size()
	if 2*margin >= s.X || 2*margin >= s.Y || 2*margin >= s.Z {
		return nil, fmt.Errorf("geom: margin %g too large for cuboid of size %v", margin, s)
	}
	coords := func(min, max float64, n int) []float64 {
		out := make([]float64, n)
		if n == 1 {
			out[0] = (min + max) / 2
			return out
		}
		step := (max - min) / float64(n-1)
		for i := range out {
			out[i] = min + float64(i)*step
		}
		return out
	}
	xs := coords(c.Min.X+margin, c.Max.X-margin, nx)
	ys := coords(c.Min.Y+margin, c.Max.Y-margin, ny)
	zs := coords(c.Min.Z+margin, c.Max.Z-margin, nz)

	pts := make([]Vec3, 0, nx*ny*nz)
	for k, z := range zs {
		yOrder := ys
		if k%2 == 1 {
			yOrder = reversed(ys)
		}
		for j, y := range yOrder {
			xOrder := xs
			if (j+k)%2 == 1 {
				xOrder = reversed(xs)
			}
			for _, x := range xOrder {
				pts = append(pts, V(x, y, z))
			}
		}
	}
	return pts, nil
}

// SplitRoundRobin partitions points into n contiguous chunks of near-equal
// size, preserving order. The paper splits 72 waypoints into two sets of 36,
// one per UAV.
func SplitRoundRobin(points []Vec3, n int) ([][]Vec3, error) {
	if n < 1 {
		return nil, fmt.Errorf("geom: cannot split into %d parts", n)
	}
	out := make([][]Vec3, n)
	base := len(points) / n
	rem := len(points) % n
	idx := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		chunk := make([]Vec3, size)
		copy(chunk, points[idx:idx+size])
		out[i] = chunk
		idx += size
	}
	return out, nil
}

// PathLength returns the total Euclidean length of the polyline through the
// given points.
func PathLength(points []Vec3) float64 {
	total := 0.0
	for i := 1; i < len(points); i++ {
		total += points[i].Dist(points[i-1])
	}
	return total
}

func reversed(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}
