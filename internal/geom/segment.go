package geom

import "math"

// Segment is a directed line segment between two points. The propagation
// model traces segments between transmitter and receiver to count wall
// crossings.
type Segment struct {
	A, B Vec3
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// At returns the point A + t*(B-A).
func (s Segment) At(t float64) Vec3 { return s.A.Lerp(s.B, t) }

// Rect is a finite axis-aligned rectangle embedded in 3-D space used to model
// wall panels. Exactly one of the axes must be degenerate (the wall's normal
// direction), i.e. Min and Max must agree in exactly one coordinate.
type Rect struct {
	Min, Max Vec3
}

// Normal returns the axis index (0=x, 1=y, 2=z) along which the rectangle is
// degenerate, or -1 if the rectangle is malformed.
func (r Rect) Normal() int {
	switch {
	case r.Min.X == r.Max.X && r.Min.Y != r.Max.Y && r.Min.Z != r.Max.Z:
		return 0
	case r.Min.Y == r.Max.Y && r.Min.X != r.Max.X && r.Min.Z != r.Max.Z:
		return 1
	case r.Min.Z == r.Max.Z && r.Min.X != r.Max.X && r.Min.Y != r.Max.Y:
		return 2
	default:
		return -1
	}
}

// Valid reports whether the rectangle is a proper axis-aligned planar panel.
func (r Rect) Valid() bool { return r.Normal() >= 0 }

// Intersects reports whether the segment crosses the rectangle, and if so the
// parametric position t ∈ [0,1] along the segment at which it does. Segments
// lying within the rectangle's plane are treated as non-crossing (a grazing
// ray does not penetrate a wall).
func (r Rect) Intersects(s Segment) (t float64, ok bool) {
	axis := r.Normal()
	if axis < 0 {
		return 0, false
	}
	var plane, a, b float64
	switch axis {
	case 0:
		plane, a, b = r.Min.X, s.A.X, s.B.X
	case 1:
		plane, a, b = r.Min.Y, s.A.Y, s.B.Y
	default:
		plane, a, b = r.Min.Z, s.A.Z, s.B.Z
	}
	denom := b - a
	if denom == 0 {
		return 0, false // parallel to the wall plane
	}
	t = (plane - a) / denom
	if t < 0 || t > 1 || math.IsNaN(t) {
		return 0, false
	}
	p := s.At(t)
	const eps = 1e-12
	switch axis {
	case 0:
		ok = p.Y >= r.Min.Y-eps && p.Y <= r.Max.Y+eps && p.Z >= r.Min.Z-eps && p.Z <= r.Max.Z+eps
	case 1:
		ok = p.X >= r.Min.X-eps && p.X <= r.Max.X+eps && p.Z >= r.Min.Z-eps && p.Z <= r.Max.Z+eps
	default:
		ok = p.X >= r.Min.X-eps && p.X <= r.Max.X+eps && p.Y >= r.Min.Y-eps && p.Y <= r.Max.Y+eps
	}
	return t, ok
}
