package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)

	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVecCross(t *testing.T) {
	x, y, z := V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x×y = %v, want %v", got, z)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y×z = %v, want %v", got, x)
	}
	if got := z.Cross(x); got != y {
		t.Errorf("z×x = %v, want %v", got, y)
	}
}

func TestVecCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		if scale == 0 || math.IsInf(scale, 0) {
			return true
		}
		return math.Abs(c.Dot(a))/scale < 1e-9 && math.Abs(c.Dot(b))/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecNormAndDist(t *testing.T) {
	v := V(3, 4, 0)
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.NormSq(); got != 25 {
		t.Errorf("NormSq = %v, want 25", got)
	}
	if got := V(1, 1, 1).Dist(V(1, 1, 4)); got != 3 {
		t.Errorf("Dist = %v, want 3", got)
	}
	if got := V(0, 0, 0).Dist2D(V(3, 4, 100)); got != 5 {
		t.Errorf("Dist2D = %v, want 5 (z must be ignored)", got)
	}
}

func TestVecUnit(t *testing.T) {
	u := V(0, 3, 4).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit().Norm() = %v, want 1", u.Norm())
	}
	if got := V(0, 0, 0).Unit(); got != V(0, 0, 0) {
		t.Errorf("Unit of zero vector = %v, want zero", got)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, -10, 4)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, -5, 2) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestVecClamp(t *testing.T) {
	lo, hi := V(0, 0, 0), V(1, 1, 1)
	got := V(-5, 0.5, 7).Clamp(lo, hi)
	if got != V(0, 0.5, 1) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestVecTriangleInequality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		sum := a.Norm() + b.Norm()
		if math.IsInf(sum, 0) {
			return true
		}
		return a.Add(b).Norm() <= sum*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecString(t *testing.T) {
	if got := V(1.234, -5.678, 9).String(); got != "(1.23, -5.68, 9.00)" {
		t.Errorf("String = %q", got)
	}
}
