// Quickstart: the complete toolchain in one page. Fly the paper's two-UAV
// survey of a simulated Antwerp apartment, train the Figure 8 estimator
// suite on the collected samples, build the fine-grained 3-D REM from the
// winner, and query it at a few unvisited locations.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Run the whole pipeline with paper-faithful defaults.
	result, err := core.Run(core.DefaultConfig(1))
	if err != nil {
		return err
	}

	// 2. The mission report: two UAVs, 36 waypoints each.
	for _, s := range result.Report.Sorties {
		fmt.Printf("UAV %s: visited %d waypoints, streamed %d samples\n",
			s.UAV, s.WaypointsVisited, s.Samples)
	}
	st := result.Data.Stats()
	fmt.Printf("dataset: %d samples from %d APs (mean RSS %.1f dBm)\n\n",
		st.Total, st.DistinctMACs, st.MeanRSSI)

	// 3. The estimator comparison (Figure 8).
	for i, s := range result.Scores {
		marker := ""
		if i == result.Best {
			marker = "  ← best"
		}
		fmt.Printf("%-30s RMSE %.3f dB%s\n", s.Name, s.RMSE, marker)
	}

	// 4. Query the REM at locations no UAV ever visited.
	fmt.Println("\nREM queries at unvisited positions:")
	for _, p := range []geom.Vec3{
		geom.V(0.77, 0.91, 0.62),
		geom.V(1.87, 1.60, 1.05), // volume centre
		geom.V(3.10, 2.70, 1.80),
	} {
		mac, rss := result.REM.Strongest(p)
		fmt.Printf("  at %v the strongest AP is %s at %.1f dBm\n", p, mac, rss)
	}
	return nil
}
