// Network planning: the paper's introduction motivates REMs for "planning
// the extensions of any wireless networking infrastructure by adding Access
// Points ... to cover dark connectivity regions". This example builds the
// REM, picks the household network that only partially covers the room,
// finds its dark regions, and proposes a new-AP position — the centroid of
// the dark set — quantifying the coverage improvement an AP there would
// bring.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/propagation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "network_planning:", err)
		os.Exit(1)
	}
}

const coverageThreshold = -72 // dBm: usable-video-call quality indoors

func run() error {
	cfg := core.DefaultConfig(1)
	cfg.REMResolution = [3]int{14, 12, 7}
	result, err := core.Run(cfg)
	if err != nil {
		return err
	}
	m := result.REM

	fmt.Printf("any-network coverage ≥ %d dBm over %.1f%% of the volume\n",
		coverageThreshold, 100*m.CoverageFraction(coverageThreshold))

	// Planning targets one specific network: pick the one whose coverage
	// is most incomplete-but-fixable (closest to half-covered).
	targetKey := ""
	bestGap := 2.0
	for _, key := range m.Keys() {
		frac, err := m.CoverageFractionFor(key, coverageThreshold)
		if err != nil {
			return err
		}
		if gap := abs(frac - 0.5); gap < bestGap {
			bestGap = gap
			targetKey = key
		}
	}
	frac, err := m.CoverageFractionFor(targetKey, coverageThreshold)
	if err != nil {
		return err
	}
	fmt.Printf("planning extension of network %s: %.1f%% of the room covered\n",
		targetKey, 100*frac)

	dark, err := m.DarkRegionsFor(targetKey, coverageThreshold)
	if err != nil {
		return err
	}
	fmt.Printf("dark cells for that network: %d\n", len(dark))
	for i, c := range dark {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(dark)-3)
			break
		}
		fmt.Printf("  dark cell at %v, predicted %.1f dBm\n", c.Center, c.BestRSS)
	}
	if len(dark) == 0 {
		fmt.Println("network already fully covered — no new AP needed")
		return nil
	}

	// Propose the centroid of the dark set, mounted near the ceiling.
	var centroid geom.Vec3
	for _, c := range dark {
		centroid = centroid.Add(c.Center)
	}
	centroid = centroid.Scale(1 / float64(len(dark)))
	proposal := geom.V(centroid.X, centroid.Y, m.Volume().Max.Z-0.15)
	fmt.Printf("\nproposed mesh-extender position: %v\n", proposal)

	// Quantify: with a 17 dBm EIRP extender there under in-room
	// line-of-sight propagation, how many dark cells get covered?
	ch, err := propagation.NewChannel(propagation.Config{
		PathLoss: propagation.LogDistance{
			PL0:      propagation.ReferenceLossDB(2437),
			D0:       1,
			Exponent: 1.8,
		},
	})
	if err != nil {
		return err
	}
	covered := 0
	worst := 0.0
	for i, c := range dark {
		rss := ch.MeanRSS(17, proposal, c.Center)
		if rss >= coverageThreshold {
			covered++
		}
		if i == 0 || rss < worst {
			worst = rss
		}
	}
	fmt.Printf("extender would cover %d/%d dark cells (worst cell at %.1f dBm)\n",
		covered, len(dark), worst)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
