// Relay placement: the paper's introduction motivates REMs for "optimizing
// the positioning of UAVs serving as mobile relays" (Rubin & Zhang). This
// example builds the REM, then searches it for the hover position that
// maximises the weaker of the two link qualities between a fixed ground
// node's AP and a far corner of the room — the classic max-min relay
// objective — entirely from map queries, with no extra measurements.
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "relay_placement:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := core.DefaultConfig(1)
	cfg.REMResolution = [3]int{14, 12, 7}
	result, err := core.Run(cfg)
	if err != nil {
		return err
	}
	m := result.REM

	// The two endpoints the relay must bridge: a desk in the weak corner
	// and a sofa near the window.
	endpointA := geom.V(0.40, 2.90, 0.80)
	endpointB := geom.V(3.30, 0.40, 0.60)

	// Serve both endpoints through the AP that is strongest at each; the
	// relay rebroadcasts, so its own uplink quality at the hover position
	// is the bottleneck. Score a candidate hover position by the weaker
	// of its two predicted links.
	apA, rssA := m.Strongest(endpointA)
	apB, rssB := m.Strongest(endpointB)
	fmt.Printf("endpoint A %v: best AP %s (%.1f dBm)\n", endpointA, apA, rssA)
	fmt.Printf("endpoint B %v: best AP %s (%.1f dBm)\n", endpointB, apB, rssB)

	vol := m.Volume()
	candidates, err := vol.Lattice(10, 9, 5, 0.25)
	if err != nil {
		return err
	}
	bestScore := math.Inf(-1)
	var bestPos geom.Vec3
	for _, p := range candidates {
		a, err := m.At(apA, p)
		if err != nil {
			return err
		}
		b, err := m.At(apB, p)
		if err != nil {
			return err
		}
		if score := math.Min(a, b); score > bestScore {
			bestScore = score
			bestPos = p
		}
	}
	fmt.Printf("\nbest relay hover position: %v\n", bestPos)
	fmt.Printf("max-min link quality there: %.1f dBm\n", bestScore)

	// Compare against the naive geometric midpoint.
	mid := endpointA.Lerp(endpointB, 0.5)
	mid = vol.Clamp(geom.V(mid.X, mid.Y, 1.2))
	a, _ := m.At(apA, mid)
	b, _ := m.At(apB, mid)
	fmt.Printf("naive midpoint %v would get:  %.1f dBm\n", mid, math.Min(a, b))
	fmt.Printf("REM-guided placement gains:   %.1f dB\n", bestScore-math.Min(a, b))
	return nil
}
