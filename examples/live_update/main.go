// Live update: the REM as a serving system rather than a batch artefact.
// The two-UAV mission's samples arrive in windows; each window
// incrementally refits the per-MAC estimator, re-rasterises only the MACs
// the window touched (copy-on-write tiles keep the rest), and publishes
// an immutable snapshot into a concurrent store. A "client" goroutine
// queries the store the whole time — before the first publish it gets
// remstore.ErrEmpty, afterwards always a complete, versioned map, and it
// never waits for a rebuild. Finally the serving snapshot is persisted
// with the binary codec and reloaded: the restart path.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "live_update:", err)
		os.Exit(1)
	}
}

func run() error {
	probe := geom.PaperScanVolume().Center()

	// 1. A store the stream will publish into — created first, so clients
	// can start querying before the first snapshot exists.
	store := remstore.New(3)

	// 2. The client: hammer the store until told to stop, counting how
	// many distinct snapshot versions it observed serving traffic.
	stop := make(chan struct{})
	clientDone := make(chan struct{})
	var served atomic.Uint64
	versions := sync.Map{}
	go func() {
		defer close(clientDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _, ver, err := store.Strongest(probe)
			switch {
			case errors.Is(err, remstore.ErrEmpty):
				// Nothing published yet; a real client would back off.
			case err != nil:
				fmt.Fprintln(os.Stderr, "client:", err)
				return
			default:
				served.Add(1)
				versions.Store(ver, true)
			}
		}
	}()

	// 3. Stream the mission: samples in ~5 windows, the per-MAC kNN
	// default (tight dirty sets → delta-proportional rebuilds).
	cfg := core.DefaultStreamConfig(1)
	cfg.Store = store
	cfg.WindowRows = 520
	cfg.OnWindow = func(rep core.WindowReport, snap *remstore.Snapshot) {
		built, shared := snap.BuildStats()
		key, rss := snap.Map().Strongest(probe)
		fmt.Printf("window %d: +%4d rows → snapshot v%d  (%2d/%2d keys rebuilt, %3d tiles shared)  centre best: %s %.1f dBm\n",
			rep.Window, rep.NewRows, rep.Version, built, len(snap.Map().Keys()), shared, key, rss)
	}
	res, err := core.RunStream(cfg)
	if err != nil {
		close(stop)
		return err
	}
	close(stop)
	<-clientDone

	distinct := 0
	versions.Range(func(_, _ any) bool { distinct++; return true })
	stats := store.Stats()
	fmt.Printf("\nstore: %d snapshots published, %d retained; client served %d queries across %d generations\n",
		stats.Publishes, stats.HistoryLen, served.Load(), distinct)

	// 4. Restart path: persist the serving snapshot with the binary codec
	// and reload it bit-for-bit.
	final := res.Store.Current().Map()
	var buf bytes.Buffer
	encoded, err := final.WriteTo(&buf)
	if err != nil {
		return err
	}
	reloaded, err := rem.ReadFrom(&buf)
	if err != nil {
		return err
	}
	if !reloaded.Equal(final) {
		return fmt.Errorf("codec round-trip changed the map")
	}
	fmt.Printf("codec: snapshot v%d (map generation %d) persisted and reloaded bit-for-bit (%d tiles, %d bytes)\n",
		res.Store.Current().Version(), final.Version(), final.NumTiles(), encoded)

	// 5. The reloaded map serves a fresh store immediately — no refit, no
	// re-rasterisation.
	warm := remstore.New(0)
	if _, err := warm.Publish(reloaded, 0); err != nil {
		return err
	}
	key, rss, ver, err := warm.Strongest(probe)
	if err != nil {
		return err
	}
	fmt.Printf("after restart: strongest at centre = %s (%.1f dBm) served by snapshot v%d\n", key, rss, ver)

	// 6. A targeted refresh: five new readings of ONE network arrive
	// (say a hand-held re-survey near its AP). In the mission windows
	// above nearly every MAC appears in every window — a survey sees the
	// whole neighbourhood — so whole-map rebuilds were honest. A targeted
	// delta is where incrementality pays: one key dirty, every other tile
	// shared, rebuild cost 1/45th of a full rasterisation.
	pre := res.Pre
	dim := pre.FeatureDim(core.DefaultStreamSpec().Features)
	var dx [][]float64
	var dy []float64
	for i := 0; i < 5; i++ {
		row := make([]float64, dim)
		row[0], row[1], row[2] = 1.0+0.2*float64(i), 1.5, 1.2
		row[3+0] = 1 // MAC index 0
		dx = append(dx, row)
		dy = append(dy, -58-float64(i))
	}
	dirty, err := res.Estimator.Observe(dx, dy)
	if err != nil {
		return err
	}
	if err := res.Estimator.Refit(); err != nil {
		return err
	}
	predict := core.BatchPredictorFor(res.Estimator, dim, 1)
	next, err := final.RebuildKeys(dirty, predict, rem.BuildOptions{})
	if err != nil {
		return err
	}
	snap, err := store.Publish(next, len(dirty))
	if err != nil {
		return err
	}
	built, shared := snap.BuildStats()
	fmt.Printf("targeted refresh of %s: snapshot v%d rebuilt %d/%d keys, shared %d/%d tiles\n",
		pre.MACs[0], snap.Version(), built, len(next.Keys()), shared, next.NumTiles())
	return nil
}
