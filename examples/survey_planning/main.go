// Survey planning: size a REM survey before flying it. Given a larger
// volume than the paper's living room (an open-plan office floor) and the
// measured battery budget, compute how many UAV sorties the survey needs,
// partition the waypoints, optimise each tour with 2-opt, and fly the
// resulting plan — demonstrating the paper's claim that "the system can be
// scaled by simply adding sets of waypoints and parameters".
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/planner"
	"repro/internal/simrand"
	"repro/internal/wifi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "survey_planning:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 7 × 6 × 2.6 m open-plan space: roughly three times the paper's
	// volume, needing a denser lattice than two sorties can cover.
	volume := geom.MustCuboid(geom.V(0, 0, 0), 7.0, 6.0, 2.6)
	points, err := volume.Lattice(6, 6, 4, 0.35)
	if err != nil {
		return err
	}
	fmt.Printf("survey volume %v m, %d waypoints\n", volume.Size(), len(points))

	// Fleet sizing from the paper's measured battery budget.
	budget := planner.PaperBudget()
	fleet, err := planner.FleetSize(len(points), budget)
	if err != nil {
		return err
	}
	fmt.Printf("battery budget allows %d waypoints per sortie → %d sorties needed\n",
		budget.MaxWaypoints(), fleet)

	parts, err := planner.Partition(points, budget)
	if err != nil {
		return err
	}

	// Build the mission plan: one UAV per sortie, tours tightened by 2-opt.
	plan := &mission.Plan{
		Volume:          volume,
		LegTime:         4 * time.Second,
		ScanStop:        3 * time.Second,
		ResultLatency:   1200 * time.Millisecond,
		TakeoffAltitude: 0.5,
	}
	for i, part := range parts {
		start := geom.V(0.6+0.4*float64(i), 0.5, 0)
		tour := planner.TwoOpt(start, part, 20)
		before := planner.TourLength(start, part)
		after := planner.TourLength(start, tour)
		fmt.Printf("sortie %c: %d waypoints, tour %.1f m → %.1f m after 2-opt\n",
			'A'+rune(i), len(tour), before, after)
		plan.UAVs = append(plan.UAVs, mission.UAVPlan{
			Name:         string(rune('A' + i)),
			RadioChannel: 60 + 10*i,
			Start:        start,
			Waypoints:    tour,
		})
	}
	if err := plan.Validate(); err != nil {
		return err
	}

	// The environment: the paper's apartment model stretched to the
	// larger room.
	env := floorplan.PaperApartment()
	env.Room = volume
	rng := simrand.New(11)
	aps, err := wifi.GeneratePopulation(env, wifi.DefaultPopulation(), rng.Derive("population"))
	if err != nil {
		return err
	}
	net, err := wifi.NewNetwork(aps, wifi.DefaultChannelParams(env, 11))
	if err != nil {
		return err
	}
	ctrl, err := mission.NewController(plan, env, net, wifi.DefaultScanner(), mission.DefaultOptions(11))
	if err != nil {
		return err
	}
	data, report, err := ctrl.Run()
	if err != nil {
		return err
	}
	fmt.Println()
	for _, s := range report.Sorties {
		status := "ok"
		if s.Err != nil {
			status = s.Err.Error()
		}
		fmt.Printf("sortie %s: %d/%d waypoints, %d samples, battery used %.0f%% (%s)\n",
			s.UAV, s.WaypointsVisited, s.WaypointsPlanned, s.Samples, 100*s.BatteryUsedFrac, status)
	}
	st := data.Stats()
	fmt.Printf("\nsurvey dataset: %d samples from %d APs over %v of flying\n",
		st.Total, st.DistinctMACs, report.TotalTime.Round(time.Second))
	return nil
}
