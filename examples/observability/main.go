// Observability end to end: one instrumented deployment — an ingesting
// leader (bootstrap survey → POST /observe → WAL → refit → publish) and
// a remfollow replica — with a remobs Observer on each side, driven
// through mixed traffic and a leader outage. The walkthrough shows:
//
//  1. attaching: one Observer per process (a leader and a follower in
//     the same process need separate Observers, since both register the
//     same rem_store_* and rem_http_* families); the store bridges its
//     existing counters at scrape time, so the query path costs the
//     same with or without it;
//  2. mixed traffic, one scrape: GET /at over JSON and POST /at over
//     the binary wire land in different cells of the per-(endpoint,
//     wire, status-class) counter cube, a miss lands in the 4xx cell,
//     and the WAL/generation metrics tell the ingest story;
//  3. latency summary: the request histogram's bucket boundaries give
//     upper-bound p50/p90/p99 without any per-request allocation;
//  4. outage: the leader dies, the follower's staleness gauge climbs in
//     real time and its consecutive-failures gauge steps up, while the
//     event ring names each sync outcome;
//  5. the event ring: a bounded, allocation-bounded flight recorder of
//     generation lifecycle — publishes, WAL appends, sync outcomes.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/remfollow"
	"repro/internal/remobs"
	"repro/internal/remserve"
	"repro/internal/remstore"
	"repro/internal/remwal"
	"repro/internal/simrand"
)

var macs = []string{"aa:00", "bb:11", "cc:22"}

// surveyDataset builds a small deterministic bootstrap survey over
// three APs (the same shape the live_ingest example uses).
func surveyDataset() *dataset.Dataset {
	rng := simrand.New(7)
	d := &dataset.Dataset{}
	for i := 0; i < 90; i++ {
		mi := i % len(macs)
		x, y, z := rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
		d.Add(dataset.Sample{
			UAV: "A", X: x, Y: y, Z: z, MAC: macs[mi], SSID: "net",
			RSSI: -40 - int(8*x) - int(3*y) - 2*mi - rng.Intn(4), Channel: 1 + mi,
		})
	}
	return d
}

// pipeline is the instrumented leader: WAL, queue, serving front and
// the core ingest loop, all sharing one Observer.
type pipeline struct {
	obs       *remobs.Observer
	srv       *httptest.Server
	queue     *remwal.Queue
	log       *remwal.Log
	cancel    context.CancelFunc
	done      chan error
	published chan uint64
	store     *remstore.Store
}

func startLeader(walDir string, obs *remobs.Observer) *pipeline {
	ctx, cancel := context.WithCancel(context.Background())
	p := &pipeline{
		obs: obs, cancel: cancel, done: make(chan error, 1),
		published: make(chan uint64, 64),
	}
	var err error
	p.log, _, err = remwal.Open(remwal.Config{Dir: walDir, Observer: obs})
	if err != nil {
		panic(err)
	}
	p.queue = remwal.NewQueue(remwal.QueueConfig{Capacity: 16, Log: p.log})
	p.queue.SetObserver(obs)

	cfg := core.IngestConfig{
		Config:   core.DefaultConfig(7),
		Queue:    p.queue,
		Context:  ctx,
		Observer: obs,
	}
	cfg.REMResolution = [3]int{6, 5, 4}
	cfg.Workers = 1
	cfg.MaxHistory = 32
	started := make(chan struct{})
	cfg.OnStore = func(st *remstore.Store) {
		p.store = st
		p.srv = httptest.NewServer(remserve.NewStore(st, remserve.Options{
			Ingest:   remserve.IngestOptions{Queue: p.queue, Token: "demo-token"},
			Observer: obs,
		}))
		close(started)
	}
	cfg.OnBatch = func(rep core.IngestReport) { p.published <- rep.Version }
	go func() {
		_, err := core.RunIngestWithDataset(cfg, surveyDataset(), nil)
		if cerr := p.log.Close(); cerr != nil && err == nil {
			err = cerr
		}
		p.done <- err
	}()
	<-started
	return p
}

// stop kills the leader wholesale: loop, queue, WAL and HTTP front.
func (p *pipeline) stop() {
	p.cancel()
	p.queue.Close()
	err := <-p.done
	p.srv.Close()
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, remwal.ErrClosed) {
		panic(err)
	}
}

// scrape fetches /metrics, validates it with the same checker CI's
// promlint runs, and returns the text.
func scrape(base string) string {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		panic(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("GET /metrics: status %d err %v", resp.StatusCode, err))
	}
	if err := remobs.CheckExposition(body); err != nil {
		panic(err)
	}
	return string(body)
}

// sample extracts one rendered series' value from exposition text.
func sample(text, series string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				panic(err)
			}
			return v
		}
	}
	panic("series not in scrape: " + series)
}

func get(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func main() {
	walDir, err := os.MkdirTemp("", "observability-wal-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(walDir)

	// ── 1. attach: one Observer per process ──
	obsL := remobs.New(64) // leader: store + WAL + ingest loop + HTTP front
	obsF := remobs.New(64) // follower: replica store + sync loop + HTTP front
	ld := startLeader(walDir, obsL)
	fmt.Printf("leader ingesting %d keys on %s, WAL in %s\n", len(macs), ld.srv.URL, walDir)

	fl, err := remfollow.New(remfollow.Config{
		Leader:       ld.srv.URL,
		MaxStaleness: 2 * time.Second,
		Observer:     obsF,
	})
	if err != nil {
		panic(err)
	}
	fsrv := httptest.NewServer(fl)
	defer fsrv.Close()
	ctx := context.Background()
	if err := fl.SyncOnce(ctx); err != nil {
		panic(err)
	}
	fmt.Printf("follower replicating on %s (separate Observer: both sides register rem_store_* and rem_http_*)\n\n", fsrv.URL)

	// ── 2. mixed traffic, one scrape ──
	fmt.Println("== 2. mixed traffic through the counter cube ==")
	obsBody := []byte(`{"key":"aa:00","observations":[[1,1,0.5,-45],[2,2,1,-52]]}`)
	req, _ := http.NewRequest(http.MethodPost, ld.srv.URL+"/observe", bytes.NewReader(obsBody))
	req.Header.Set("Authorization", "Bearer demo-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	<-ld.published // the batch's generation is live
	if err := fl.SyncOnce(ctx); err != nil {
		panic(err)
	}

	for i := 0; i < 5; i++ { // JSON reads
		if s := get(ld.srv.URL + "/at?key=aa:00&x=1&y=1&z=1"); s != http.StatusOK {
			panic(s)
		}
	}
	points := []geom.Vec3{geom.V(1, 1, 1), geom.V(2, 2, 1), geom.V(3, 1, 2)}
	for i := 0; i < 3; i++ { // binary-wire batch reads
		body := remserve.AppendBatchRequest(nil, "bb:11", points)
		req, _ := http.NewRequest(http.MethodPost, ld.srv.URL+"/at", bytes.NewReader(body))
		req.Header.Set("Content-Type", remserve.WireContentType)
		req.Header.Set("Accept", remserve.WireContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			panic(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	get(ld.srv.URL + "/at?key=no:such:key&x=1&y=1&z=1") // a 4xx cell

	text := scrape(ld.srv.URL)
	for _, series := range []string{
		`rem_http_requests_total{code="2xx",endpoint="at",wire="json"}`,
		`rem_http_requests_total{code="2xx",endpoint="at",wire="binary"}`,
		`rem_http_requests_total{code="4xx",endpoint="at",wire="json"}`,
		`rem_http_requests_total{code="2xx",endpoint="observe",wire="json"}`,
		`rem_store_queries_total`,
		`rem_store_coverindex_candidate_ratio`,
		`rem_wal_append_seconds_count`,
		`rem_wal_fsync_seconds_count`,
		`rem_gen_generations_total`,
	} {
		fmt.Printf("  %-62s %g\n", series, sample(text, series))
	}
	fmt.Println()

	// ── 3. latency summary from the histogram buckets ──
	fmt.Println("== 3. request-latency summary (bucket upper bounds) ==")
	// Registration is idempotent, so re-registering the series hands the
	// example the same Histogram the serving wrapper observes into.
	hist := obsL.Registry.Histogram("rem_http_request_seconds",
		"HTTP request latency by endpoint and wire codec",
		remobs.L("endpoint", "at"), remobs.L("wire", "json"))
	fmt.Printf("  GET /at (json): %d requests, p50 ≤ %.3gs, p90 ≤ %.3gs, p99 ≤ %.3gs\n\n",
		hist.Count(), hist.Quantile(0.5), hist.Quantile(0.9), hist.Quantile(0.99))

	// ── 4. outage: the staleness gauge climbs, failures step up ──
	fmt.Println("== 4. leader outage through the follower's gauges ==")
	before := scrape(fsrv.URL)
	fmt.Printf("  healthy: staleness %.3gs, consecutive failures %g, syncs %g (%g full + %g delta + %g not-modified)\n",
		sample(before, "rem_follow_staleness_seconds"),
		sample(before, "rem_follow_consecutive_failures"),
		sample(before, "rem_follow_syncs_total"),
		sample(before, "rem_follow_fulls_total"),
		sample(before, "rem_follow_deltas_total"),
		sample(before, "rem_follow_not_modified_total"))
	ld.stop()
	var stale [2]float64
	for i := range stale {
		if err := fl.SyncOnce(ctx); err == nil {
			panic("sync against a dead leader should fail")
		}
		time.Sleep(150 * time.Millisecond)
		stale[i] = sample(scrape(fsrv.URL), "rem_follow_staleness_seconds")
	}
	after := scrape(fsrv.URL)
	if stale[1] <= stale[0] {
		panic("staleness gauge did not climb through the outage")
	}
	fmt.Printf("  leader killed: staleness %.3gs → %.3gs and climbing, consecutive failures %g, failures total %g\n\n",
		stale[0], stale[1],
		sample(after, "rem_follow_consecutive_failures"),
		sample(after, "rem_follow_failures_total"))

	// ── 5. the event rings name what happened ──
	fmt.Println("== 5. generation event rings ==")
	fmt.Println("  leader (publishes, WAL, generations):")
	evs := obsL.Events.Snapshot()
	if len(evs) > 6 {
		evs = evs[len(evs)-6:]
	}
	for _, e := range evs {
		fmt.Printf("    #%d %-10s %s\n", e.Seq, e.Kind, e.Text)
	}
	fmt.Println("  follower (sync outcomes):")
	for _, e := range obsF.Events.Snapshot() {
		if e.Kind == "sync" {
			fmt.Printf("    #%d %-10s %s\n", e.Seq, e.Kind, e.Text)
		}
	}
}
