// HTTP query front: the live sharded REM served over the network. The
// two-UAV mission streams into a 2-shard store while an HTTP client —
// talking only JSON and bytes, linking none of the library — queries it
// concurrently. The walkthrough shows:
//
//  1. serve-while-streaming: core.RunStream's OnStore hook boots the
//     remserve front before the first window publishes, so clients see
//     every generation from v1 on (503 only before the first publish);
//  2. point, batch and best-server queries over HTTP, each response
//     carrying the serving snapshot version;
//  3. snapshot download + codec restart: GET /snapshot streams the
//     binary codec (byte-identical to a direct Map.WriteTo), rem.ReadFrom
//     restores a queryable map from it, and its local answers match the
//     served ones bit for bit (determinism contract rule 8, over the
//     wire);
//  4. ETag/If-None-Match: re-polling an unchanged map costs one header
//     exchange (304, no body).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remserve"
	"repro/internal/remshard"
	"repro/internal/remstore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "http_query:", err)
		os.Exit(1)
	}
}

type atResp struct {
	Key     string   `json:"key"`
	Value   *float64 `json:"value"` // null for NaN cells
	Version uint64   `json:"version"`
}

type batchResp struct {
	Key     string     `json:"key"`
	Values  []*float64 `json:"values"`
	Version uint64     `json:"version"`
}

func run() error {
	probe := geom.PaperScanVolume().Center()

	// 1. Stream the mission into a 2-shard store, booting the HTTP
	// front from the OnStore hook — before the first publish, so the
	// client below races real serving-store startup.
	cfg := core.DefaultStreamConfig(1)
	cfg.Shards = 2
	cfg.WindowRows = 520
	var srv *remserve.Server
	addrCh := make(chan string, 1)
	keysCh := make(chan []string, 1)
	cfg.OnStore = func(_ *remstore.Store, ss *remshard.ShardedStore) {
		srv = remserve.NewSharded(ss, remserve.Options{})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err) // example wiring; a real deployment returns this
		}
		go func() {
			if err := srv.Serve(l); err != nil {
				fmt.Fprintln(os.Stderr, "http_query: serve:", err)
			}
		}()
		keysCh <- ss.Keys()
		addrCh <- l.Addr().String()
	}
	cfg.OnShardWindow = func(rep core.WindowReport, round remshard.Round) {
		fmt.Printf("window %d: +%4d rows → round %d, %d/%d shards republished\n",
			rep.Window, rep.NewRows, round.Seq, round.AffectedShards, cfg.Shards)
	}
	streamDone := make(chan *core.StreamResult, 1)
	streamErr := make(chan error, 1)
	go func() {
		res, err := core.RunStream(cfg)
		if err != nil {
			streamErr <- err
			return
		}
		streamDone <- res
	}()

	var addr string
	var keys []string
	select {
	case err := <-streamErr:
		return err
	case addr = <-addrCh:
		keys = <-keysCh
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}
	fmt.Printf("HTTP front on %s, %d keys served\n", base, len(keys))

	// 2. Query over HTTP while the stream publishes: 503 until the
	// first windows land, then versioned answers that step up as
	// generations swap underneath.
	key := keys[0]
	var res *core.StreamResult
	served, unavailable := 0, 0
	lastVer := uint64(0)
	for res == nil {
		r, err := client.Get(base + "/at?key=" + key + "&x=2&y=1.5&z=1")
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		switch r.StatusCode {
		case http.StatusOK:
			var a atResp
			if err := json.Unmarshal(body, &a); err != nil {
				return err
			}
			served++
			if a.Version != lastVer {
				fmt.Printf("  client saw generation swap → v%d\n", a.Version)
				lastVer = a.Version
			}
		case http.StatusServiceUnavailable:
			unavailable++ // before the first publish
		default:
			return fmt.Errorf("GET /at: %s: %s", r.Status, strings.TrimSpace(string(body)))
		}
		select {
		case err := <-streamErr:
			return err
		case res = <-streamDone:
		default:
		}
	}
	fmt.Printf("during the stream: %d answers served, %d early 503s\n", served, unavailable)

	// Batch POST: key resolved once, one snapshot for the whole batch.
	breq, _ := json.Marshal(map[string]any{
		"key":    key,
		"points": [][3]float64{{probe.X, probe.Y, probe.Z}, {0.5, 0.5, 0.5}, {3, 2, 2}},
	})
	r, err := client.Post(base+"/at", "application/json", bytes.NewReader(breq))
	if err != nil {
		return err
	}
	var br batchResp
	if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
		return err
	}
	r.Body.Close()
	fmt.Printf("batch of %d points served by v%d\n", len(br.Values), br.Version)

	// The same batch over the binary wire: Content-Type selects the
	// request codec, Accept the response codec. The value block carries
	// raw float64 bits — bit-identical to what the JSON response rendered.
	wireBody := remserve.AppendBatchRequest(nil, key,
		[]geom.Vec3{probe, {X: 0.5, Y: 0.5, Z: 0.5}, {X: 3, Y: 2, Z: 2}})
	wreq, err := http.NewRequest(http.MethodPost, base+"/at", bytes.NewReader(wireBody))
	if err != nil {
		return err
	}
	wreq.Header.Set("Content-Type", remserve.WireContentType)
	wreq.Header.Set("Accept", remserve.WireContentType)
	r, err = client.Do(wreq)
	if err != nil {
		return err
	}
	wireResp, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return err
	}
	wvals, wver, err := remserve.DecodeBatchResponse(wireResp)
	if err != nil {
		return err
	}
	for i, v := range wvals {
		jv := math.NaN()
		if br.Values[i] != nil {
			jv = *br.Values[i]
		}
		if math.Float64bits(v) != math.Float64bits(jv) && !(math.IsNaN(v) && br.Values[i] == nil) {
			return fmt.Errorf("rule 8 violated on the binary wire: value %d is %v binary vs %v JSON", i, v, jv)
		}
	}
	fmt.Printf("binary wire: %d-byte request, %d-byte response, v%d — values ≡ JSON bit for bit\n",
		len(wireBody), len(wireResp), wver)

	// Best-server query: merged across shards, same winner as the
	// library call.
	r, err = client.Get(fmt.Sprintf("%s/strongest?x=%g&y=%g&z=%g", base, probe.X, probe.Y, probe.Z))
	if err != nil {
		return err
	}
	var strongest atResp
	if err := json.NewDecoder(r.Body).Decode(&strongest); err != nil {
		return err
	}
	r.Body.Close()
	lk, lv, _, err := res.Sharded.Strongest(probe)
	if err != nil {
		return err
	}
	if strongest.Key != lk || strongest.Value == nil || math.Float64bits(*strongest.Value) != math.Float64bits(lv) {
		return fmt.Errorf("rule 8 violated over the wire: /strongest %v vs library %s %v", strongest, lk, lv)
	}
	fmt.Printf("strongest at centre over HTTP ≡ library: %s (%.1f dBm)\n", lk, lv)

	// 3. Snapshot download + codec restart: the served bytes ARE the
	// codec — a client can restore a full queryable map from them.
	r, err = client.Get(base + "/snapshot")
	if err != nil {
		return err
	}
	snapBytes, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return err
	}
	etag := r.Header.Get("ETag")
	direct, err := res.Sharded.MergedSnapshot()
	if err != nil {
		return err
	}
	var directBytes bytes.Buffer
	if _, err := direct.WriteTo(&directBytes); err != nil {
		return err
	}
	if !bytes.Equal(snapBytes, directBytes.Bytes()) {
		return errors.New("rule 8 violated: /snapshot bytes differ from direct WriteTo")
	}
	restored, err := rem.ReadFrom(bytes.NewReader(snapBytes))
	if err != nil {
		return err
	}
	lv2, err := restored.At(key, probe)
	if err != nil {
		return err
	}
	r, err = client.Get(fmt.Sprintf("%s/at?key=%s&x=%g&y=%g&z=%g", base, key, probe.X, probe.Y, probe.Z))
	if err != nil {
		return err
	}
	var a atResp
	if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
		return err
	}
	r.Body.Close()
	if a.Value == nil || math.Float64bits(*a.Value) != math.Float64bits(lv2) {
		return errors.New("restored snapshot answers differ from the served ones")
	}
	fmt.Printf("snapshot: %d bytes ≡ direct export (ETag %s); restored map answers bit-identically\n",
		len(snapBytes), etag)

	// 4. Re-poll with If-None-Match: the map has not changed, so the
	// exchange is headers-only.
	req, err := http.NewRequest(http.MethodGet, base+"/snapshot", nil)
	if err != nil {
		return err
	}
	req.Header.Set("If-None-Match", etag)
	r, err = client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotModified {
		return fmt.Errorf("expected 304 for unchanged snapshot, got %s", r.Status)
	}
	fmt.Printf("re-poll with If-None-Match: %s — one header exchange, no body\n", r.Status)

	// Drain in-flight queries and stop.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
