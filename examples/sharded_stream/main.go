// Sharded stream: the REM vocabulary partitioned across independent
// stores. The two-UAV mission's samples arrive in windows, each window's
// dirty-key set is grouped by shard, and only the affected shards
// rebuild and publish — concurrently — while clients keep querying every
// shard lock-free. The walkthrough shows:
//
//  1. routed queries (At/AtBatch) and cross-shard best-server queries
//     (Strongest) hammering the store while the stream publishes;
//  2. determinism contract rule 8: the sharded store's merged view is
//     byte-identical to a monolithic stream over the same data;
//  3. the payoff of per-shard publishes: a targeted re-survey of one AP
//     rebuilds exactly one shard, and the other shards' serving
//     snapshots — versions included — do not move.
package main

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/rem"
	"repro/internal/remshard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sharded_stream:", err)
		os.Exit(1)
	}
}

func run() error {
	const shards = 4
	probe := geom.PaperScanVolume().Center()

	// 1. Fly the mission once and fix the vocabulary, so the sharded
	// store can exist before the stream starts publishing into it —
	// clients query it from the first moment.
	cfg := core.DefaultStreamConfig(1)
	cfg.WindowRows = 520
	ctrl, err := mission.NewPaperController(cfg.Mission)
	if err != nil {
		return err
	}
	data, report, err := ctrl.Run()
	if err != nil {
		return err
	}
	pre, err := dataset.Preprocess(data, cfg.MinSamplesPerMAC)
	if err != nil {
		return err
	}
	store, err := remshard.New(pre.MACs, remshard.Config{
		Shards:     shards, // Partitioner nil → hash-by-MAC
		Volume:     geom.PaperScanVolume(),
		Resolution: cfg.REMResolution,
	})
	if err != nil {
		return err
	}
	for si := 0; si < shards; si++ {
		fmt.Printf("shard %d owns %2d of %d MACs\n", si, len(store.ShardKeys(si)), len(pre.MACs))
	}

	// 2. The clients: routed point and batch queries plus cross-shard
	// best-server queries, all lock-free, all while shards publish.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var served, batchPoints atomic.Uint64
	clientErr := make(chan error, 2)
	wg.Add(2)
	go func() { // routed queries on a fixed MAC
		defer wg.Done()
		key := pre.MACs[0]
		pts := []geom.Vec3{probe, geom.V(0.5, 0.5, 0.5), geom.V(3, 2, 2)}
		buf := make([]float64, len(pts))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := store.At(key, probe); err != nil && !errors.Is(err, remshard.ErrEmpty) {
				clientErr <- err
				return
			}
			ver, err := store.AtBatchInto(buf, key, pts) // zero-allocation serving path
			switch {
			case errors.Is(err, remshard.ErrEmpty): // nothing published yet
			case err != nil:
				clientErr <- err
				return
			default:
				_ = ver
				served.Add(1)
				batchPoints.Add(uint64(len(pts)))
			}
		}
	}()
	go func() { // best-server queries across every shard
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, _, err := store.Strongest(probe); err != nil && !errors.Is(err, remshard.ErrEmpty) {
				clientErr <- err
				return
			}
		}
	}()

	// 3. Stream the mission into the sharded store: only the shards a
	// window dirties rebuild, concurrently, and publish independently.
	cfg.ShardStore = store
	cfg.OnShardWindow = func(rep core.WindowReport, round remshard.Round) {
		fmt.Printf("window %d: +%4d rows → round %d: %2d keys dirty, %d/%d shards rebuilt, %3d tiles shared\n",
			rep.Window, rep.NewRows, round.Seq, rep.DirtyKeys, round.AffectedShards, shards, round.SharedTiles)
	}
	res, err := core.RunStreamWithDataset(cfg, data, report)
	if err != nil {
		close(stop)
		return err
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-clientErr:
		return err
	default:
	}
	stats := store.Stats()
	fmt.Printf("\nstream done: %d rounds, %d shard publishes, %d logical queries served (%d batch ops)\n",
		stats.Rounds, stats.ShardPublishes, stats.Queries, served.Load())

	// 4. Rule 8: reassemble the monolithic view from the shards (tile
	// headers only, no copying) and check it against a monolithic stream
	// over the same data.
	merged, err := store.MergedSnapshot()
	if err != nil {
		return err
	}
	monoCfg := core.DefaultStreamConfig(1)
	monoCfg.WindowRows = cfg.WindowRows
	mono, err := core.RunStreamWithDataset(monoCfg, data, report)
	if err != nil {
		return err
	}
	monoMap := mono.Store.Current().Map()
	if !merged.Equal(monoMap) {
		return fmt.Errorf("rule 8 violated: merged sharded view differs from the monolithic stream")
	}
	sk, sv, _, err := store.Strongest(probe)
	if err != nil {
		return err
	}
	mk, mv, _, err := mono.Store.Strongest(probe)
	if err != nil {
		return err
	}
	if sk != mk || math.Float64bits(sv) != math.Float64bits(mv) {
		return fmt.Errorf("rule 8 violated: Strongest differs (%s %v vs %s %v)", sk, sv, mk, mv)
	}
	fmt.Printf("rule 8 holds: merged view ≡ monolithic map; strongest at centre: %s (%.1f dBm) on both\n", sk, sv)

	// 5. A targeted re-survey of ONE AP: five new readings for one MAC
	// dirty one shard; that shard republishes and every other shard's
	// serving snapshot (and version) is untouched — no tile copies, no
	// publish, no query ever blocked.
	mac := pre.MACs[0]
	si, _ := store.ShardFor(mac)
	before := make([]uint64, shards)
	for s := 0; s < shards; s++ {
		before[s] = store.StoreOf(s).Current().Version()
	}
	dim := pre.FeatureDim(core.DefaultStreamSpec().Features)
	var dx [][]float64
	var dy []float64
	for i := 0; i < 5; i++ {
		row := make([]float64, dim)
		row[0], row[1], row[2] = 1.0+0.2*float64(i), 1.5, 1.2
		row[3+0] = 1 // MAC index 0
		dx = append(dx, row)
		dy = append(dy, -58-float64(i))
	}
	dirty, err := res.Estimator.Observe(dx, dy)
	if err != nil {
		return err
	}
	if err := res.Estimator.Refit(); err != nil {
		return err
	}
	round, err := store.Rebuild(dirty, core.BatchPredictorFor(res.Estimator, dim, 1), rem.BuildOptions{Workers: cfg.Workers})
	if err != nil {
		return err
	}
	fmt.Printf("targeted refresh of %s (shard %d): round %d rebuilt %d shard(s), %d key(s)\n",
		mac, si, round.Seq, round.AffectedShards, round.BuiltKeys)
	for s := 0; s < shards; s++ {
		after := store.StoreOf(s).Current().Version()
		marker := "unchanged"
		if after != before[s] {
			marker = fmt.Sprintf("v%d → v%d", before[s], after)
		}
		fmt.Printf("  shard %d: %s\n", s, marker)
	}
	return nil
}
