// Replicated REM: a leader serving a live sharded REM over HTTP, and a
// remfollow replica that stays byte-identical to it through the delta
// wire — and stays *useful* when the leader dies. The walkthrough shows:
//
//  1. first contact: one full snapshot, after which the replica's
//     /snapshot bytes equal the leader's (rule 8 across replicas —
//     version fields included);
//  2. steady state: leader publishes a new generation, the replica
//     pulls only the changed tiles (a REMD delta, a fraction of the
//     full codec) and is byte-identical again;
//  3. leader killed: syncs fail, but reads keep working against the
//     last good generation; past the staleness bound the replica's
//     /healthz flips to 503 "stale" while /at still answers;
//  4. leader restarted from scratch (fresh store, reset versions): the
//     replica detects the unknown base, falls back to a full snapshot,
//     and converges on the new leader's bytes.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remfollow"
	"repro/internal/remserve"
	"repro/internal/remshard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replicated_rem:", err)
		os.Exit(1)
	}
}

var keys = []string{
	"AA:BB:00:00:00:01", "AA:BB:00:00:00:02", "AA:BB:00:00:00:03",
	"AA:BB:00:00:00:04", "AA:BB:00:00:00:05", "AA:BB:00:00:00:06",
}

var volume = geom.MustCuboid(geom.V(0, 0, 0), 4, 3, 2.6)

// leader bundles a sharded store with its HTTP front so the walkthrough
// can kill and restart it wholesale.
type leader struct {
	ss   *remshard.ShardedStore
	srv  *remserve.Server
	lis  net.Listener
	done chan error
}

// startLeader builds a fresh sharded store (versions restart at 1 — a
// real process restart), publishes one generation, and serves it on
// addr ("127.0.0.1:0" picks a port).
func startLeader(addr string, gen *int) (*leader, error) {
	ss, err := remshard.New(keys, remshard.Config{
		Shards: 2, Volume: volume, Resolution: [3]int{10, 8, 5},
	})
	if err != nil {
		return nil, err
	}
	ld := &leader{ss: ss, done: make(chan error, 1)}
	if err := ld.publish(gen, nil); err != nil {
		return nil, err
	}
	ld.srv = remserve.NewSharded(ss, remserve.Options{})
	ld.lis, err = net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { ld.done <- ld.srv.Serve(ld.lis) }()
	return ld, nil
}

// publish advances the named keys (all of them when dirty is nil) one
// generation — a deterministic field that depends on the generation
// counter, so every round is a genuinely new map.
func (ld *leader) publish(gen *int, dirty []int) error {
	*gen++
	g := float64(*gen)
	if dirty == nil {
		dirty = make([]int, len(keys))
		for i := range dirty {
			dirty[i] = i
		}
	}
	_, err := ld.ss.Rebuild(dirty, func(centers []geom.Vec3, ki int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i] = -52 - p.X - 2*p.Y + p.Z - 3*g - float64(ki%3)
		}
		return out, nil
	}, rem.BuildOptions{})
	return err
}

// stop kills the leader: no drain grace, like a SIGKILL.
func (ld *leader) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = ld.srv.Shutdown(ctx)
	<-ld.done
}

// get fetches a URL and returns status, headers and body.
func get(url string) (int, http.Header, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header, body, err
}

// snapshotOf downloads /snapshot and returns its bytes and ETag.
func snapshotOf(base string) ([]byte, string, error) {
	status, hdr, body, err := get(base + "/snapshot")
	if err != nil {
		return nil, "", err
	}
	if status != http.StatusOK {
		return nil, "", fmt.Errorf("GET /snapshot: %d", status)
	}
	return body, hdr.Get("ETag"), nil
}

func run() error {
	gen := 0
	ld, err := startLeader("127.0.0.1:0", &gen)
	if err != nil {
		return err
	}
	leaderAddr := ld.lis.Addr().String()
	leaderURL := "http://" + leaderAddr
	fmt.Printf("leader serving %d keys over 2 shards on %s\n\n", len(keys), leaderURL)

	// The replica: poll fast, call syncs explicitly (SyncOnce) so each
	// step of the walkthrough is deterministic; a deployment would use
	// Run(ctx) (or `remgen -follow URL -serve ADDR`).
	fl, err := remfollow.New(remfollow.Config{
		Leader:       leaderURL,
		MaxStaleness: 300 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	flis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	flDone := make(chan error, 1)
	go func() { flDone <- fl.Serve(flis) }()
	replicaURL := "http://" + flis.Addr().String()

	// ── 1. first contact: a full snapshot, then byte identity ──
	ctx := context.Background()
	if err := fl.SyncOnce(ctx); err != nil {
		return err
	}
	lb, ltag, err := snapshotOf(leaderURL)
	if err != nil {
		return err
	}
	rb, rtag, err := snapshotOf(replicaURL)
	if err != nil {
		return err
	}
	if !bytes.Equal(lb, rb) || ltag != rtag {
		return errors.New("replica differs from leader after first sync")
	}
	s := fl.SyncStats()
	fmt.Printf("1. first sync: full snapshot (%d bytes), replica /snapshot ≡ leader /snapshot, ETag %s\n\n", s.FullBytes, rtag)

	// ── 2. steady state: only the changed tiles cross the wire ──
	if err := ld.publish(&gen, []int{2}); err != nil { // one key → one shard dirty
		return err
	}
	if err := fl.SyncOnce(ctx); err != nil {
		return err
	}
	lb, _, err = snapshotOf(leaderURL)
	if err != nil {
		return err
	}
	rb, rtag, err = snapshotOf(replicaURL)
	if err != nil {
		return err
	}
	if !bytes.Equal(lb, rb) {
		return errors.New("replica differs from leader after delta sync")
	}
	s = fl.SyncStats()
	fmt.Printf("2. leader republished 1 of %d keys → delta sync: %d bytes on the wire vs %d for the full codec (%.0f%%); byte-identical again at %s\n\n",
		len(keys), s.DeltaBytes, len(lb), 100*float64(s.DeltaBytes)/float64(len(lb)), rtag)

	// ── 3. leader dies: stale reads beat no reads ──
	ld.stop()
	if err := fl.SyncOnce(ctx); err == nil {
		return errors.New("sync against a dead leader should fail")
	}
	status, _, _, err := get(replicaURL + "/at?key=" + keys[0] + "&x=1&y=1&z=1")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("stale /at: status %d err %v", status, err)
	}
	time.Sleep(400 * time.Millisecond) // cross the 300ms staleness bound
	hstatus, _, hbody, err := get(replicaURL + "/healthz")
	if err != nil {
		return err
	}
	if hstatus != http.StatusServiceUnavailable || !bytes.Contains(hbody, []byte(`"stale"`)) {
		return fmt.Errorf("healthz past staleness bound: %d %s", hstatus, hbody)
	}
	status, _, _, err = get(replicaURL + "/at?key=" + keys[0] + "&x=1&y=1&z=1")
	if err != nil || status != http.StatusOK {
		return fmt.Errorf("stale /at: status %d err %v", status, err)
	}
	fmt.Printf("3. leader killed: syncs fail, /at still answers from the last good generation, /healthz reports %d %s\n", hstatus, bytes.TrimSpace(hbody))

	// ── 4. leader reborn with reset versions: full resync ──
	ld, err = startLeader(leaderAddr, &gen)
	if err != nil {
		return err
	}
	defer ld.stop()
	if err := fl.SyncOnce(ctx); err != nil {
		return err
	}
	lb, _, err = snapshotOf(leaderURL)
	if err != nil {
		return err
	}
	rb, rtag, err = snapshotOf(replicaURL)
	if err != nil {
		return err
	}
	if !bytes.Equal(lb, rb) {
		return errors.New("replica differs from reborn leader")
	}
	hstatus, _, _, err = get(replicaURL + "/healthz")
	if err != nil || hstatus != http.StatusOK {
		return fmt.Errorf("healthz after resync: %d err %v", hstatus, err)
	}
	s = fl.SyncStats()
	fmt.Printf("\n4. leader restarted from scratch: unknown base → full resync (%d fulls, %d resyncs total), byte-identical at %s, /healthz 200\n",
		s.Fulls, s.Resyncs, rtag)

	sctx, scancel := context.WithTimeout(context.Background(), time.Second)
	defer scancel()
	if err := fl.Shutdown(sctx); err != nil {
		return err
	}
	<-flDone
	return nil
}
