// Live ingestion with a write-ahead log: the durable write half of the
// serving edge. An in-process ingest pipeline (bootstrap survey →
// remserve front with POST /observe → remwal queue+WAL → incremental
// refit → publish) is driven over HTTP, crashed, and replayed; the
// walkthrough shows:
//
//  1. the write surface: POST /observe accepts a JSON observation batch
//     (and the binary "REMO" wire under Content-Type:
//     application/x-rem-batch) and acknowledges with the WAL sequence —
//     only after the batch is on disk;
//  2. one batch, one snapshot: every accepted batch Observe→Refit→
//     RebuildKeys→Publish-es a new store version while reads keep
//     answering throughout;
//  3. rule 10: after a simulated crash (the pipeline is torn down
//     mid-stream, only the WAL survives), a fresh pipeline replaying the
//     WAL publishes snapshots byte-identical to the uninterrupted run;
//  4. WAL retention: once a snapshot is exported, Prune drops the
//     segments whose batches it already embodies.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/remserve"
	"repro/internal/remstore"
	"repro/internal/remwal"
	"repro/internal/simrand"
)

// surveyDataset builds a small deterministic bootstrap survey over
// three APs.
func surveyDataset() *dataset.Dataset {
	rng := simrand.New(7)
	macs := []string{"aa:00", "bb:11", "cc:22"}
	d := &dataset.Dataset{}
	for i := 0; i < 90; i++ {
		mi := i % len(macs)
		x, y, z := rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
		d.Add(dataset.Sample{
			UAV: "A", X: x, Y: y, Z: z, MAC: macs[mi], SSID: "net",
			RSSI: -40 - int(8*x) - int(3*y) - 2*mi - rng.Intn(4), Channel: 1 + mi,
		})
	}
	return d
}

// pipeline is one ingest run: WAL, queue, serving front and the core
// loop, with every published version's codec bytes recorded.
type pipeline struct {
	srv       *httptest.Server
	queue     *remwal.Queue
	cancel    context.CancelFunc
	done      chan error
	published chan uint64
	versions  map[uint64][]byte
	store     *remstore.Store
}

// wait blocks until n more batches have published.
func (p *pipeline) wait(n int) {
	for i := 0; i < n; i++ {
		<-p.published
	}
}

func startPipeline(walDir string) *pipeline {
	ctx, cancel := context.WithCancel(context.Background())
	p := &pipeline{
		cancel: cancel, done: make(chan error, 1),
		published: make(chan uint64, 64), versions: map[uint64][]byte{},
	}

	var replay []remwal.Batch
	var log *remwal.Log
	if walDir != "" {
		l, recs, err := remwal.Open(remwal.Config{Dir: walDir})
		if err != nil {
			panic(err)
		}
		log = l
		replay, _ = remwal.Batches(recs)
	}
	p.queue = remwal.NewQueue(remwal.QueueConfig{Capacity: 16, Log: log})

	cfg := core.IngestConfig{
		Config:  core.DefaultConfig(7),
		Queue:   p.queue,
		Replay:  replay,
		Context: ctx,
	}
	cfg.REMResolution = [3]int{6, 5, 4}
	cfg.Workers = 1
	cfg.MaxHistory = 32
	started := make(chan struct{})
	cfg.OnStore = func(st *remstore.Store) {
		p.store = st
		p.srv = httptest.NewServer(remserve.NewStore(st, remserve.Options{
			Ingest: remserve.IngestOptions{Queue: p.queue, Token: "demo-token"},
		}))
		close(started)
	}
	cfg.OnBatch = func(rep core.IngestReport) {
		src := "live"
		if rep.Replayed {
			src = "replay"
		}
		snap := p.store.SnapshotAt(rep.Version)
		var buf bytes.Buffer
		if _, err := snap.Map().WriteTo(&buf); err != nil {
			panic(err)
		}
		p.versions[rep.Version] = buf.Bytes()
		fmt.Printf("  batch %d (%s): %d rows → version %d (%d keys dirty, %d tiles shared)\n",
			rep.Seq, src, rep.Rows, rep.Version, rep.DirtyKeys, rep.SharedTiles)
		p.published <- rep.Version
	}
	go func() {
		_, err := core.RunIngestWithDataset(cfg, surveyDataset(), nil)
		if log != nil {
			if cerr := log.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		p.done <- err
	}()
	<-started
	return p
}

// stop tears the pipeline down (cancel the loop, close the HTTP front)
// and waits for the run to return.
func (p *pipeline) stop() {
	p.cancel()
	p.queue.Close()
	err := <-p.done
	p.srv.Close()
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, remwal.ErrClosed) {
		panic(err)
	}
}

func post(url, token, contentType string, body []byte) (*http.Response, string) {
	req, err := http.NewRequest(http.MethodPost, url+"/observe", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	var sb strings.Builder
	buf := make([]byte, 256)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	return resp, strings.TrimSpace(sb.String())
}

func main() {
	walDir, err := os.MkdirTemp("", "live-ingest-wal-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(walDir)

	fmt.Println("== 1. the write surface ==")
	p := startPipeline(walDir)
	resp, body := post(p.srv.URL, "", "", []byte(`{"key":"aa:00","observations":[[1,1,1,-45]]}`))
	fmt.Printf("no token        → %d %s\n", resp.StatusCode, body)
	resp, body = post(p.srv.URL, "demo-token", "",
		[]byte(`{"key":"aa:00","observations":[[1,1,0.5,-45],[2,2,1,-52]]}`))
	fmt.Printf("JSON batch      → %d %s\n", resp.StatusCode, body)
	wire := remwal.AppendBatch(nil, remwal.Batch{
		Key:    "bb:11",
		Points: []geom.Vec3{geom.V(3, 1, 2)},
		Values: []float64{-61.5},
	})
	resp, body = post(p.srv.URL, "demo-token", remserve.WireContentType, wire)
	fmt.Printf("binary REMO     → %d %s\n", resp.StatusCode, body)
	resp, body = post(p.srv.URL, "demo-token", "", []byte(`{"key":"zz:99","observations":[[1,1,1,-45]]}`))
	fmt.Printf("unknown key     → %d %s\n", resp.StatusCode, body)

	fmt.Println("\n== 2. one batch, one snapshot ==")
	resp, body = post(p.srv.URL, "demo-token", "", []byte(`{"key":"cc:22","observations":[[0.5,2.5,1.5,-70]]}`))
	fmt.Printf("third batch     → %d %s\n", resp.StatusCode, body)
	p.wait(3) // bootstrap is v1; the three batches publish v2..v4
	fmt.Printf("store is at version %d (bootstrap was 1)\n", p.store.Stats().CurrentVersion)

	fmt.Println("\n== 3. rule 10: crash, replay, byte-identical snapshots ==")
	live := p.versions
	p.stop() // the "crash": everything in memory is gone; the WAL survives
	fmt.Printf("pipeline killed; WAL holds the %d acknowledged batches\n", len(live))
	p2 := startPipeline(walDir)
	p2.wait(3)
	identical := len(p2.versions) == len(live)
	for v, b := range live {
		if !bytes.Equal(p2.versions[v], b) {
			identical = false
		}
	}
	fmt.Printf("replayed run republished versions 2..4 byte-identical: %v\n", identical)

	p2.stop()

	fmt.Println("\n== 4. WAL retention after a snapshot export ==")
	pruneDir, err := os.MkdirTemp("", "live-ingest-prune-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(pruneDir)
	// Tiny segments so each batch lands in its own file.
	l, _, err := remwal.Open(remwal.Config{Dir: pruneDir, SegmentBytes: 64})
	if err != nil {
		panic(err)
	}
	src, recs, rerr := remwal.Open(remwal.Config{Dir: walDir})
	if rerr != nil {
		panic(rerr)
	}
	if err := src.Close(); err != nil {
		panic(err)
	}
	for _, r := range recs {
		if _, err := l.Append(r.Payload); err != nil {
			panic(err)
		}
	}
	before := l.Segments()
	// Exporting a snapshot that embodies batches 1..3 makes their
	// segments redundant: a restart loads the snapshot and only needs
	// newer batches.
	if err := l.Prune(4); err != nil {
		panic(err)
	}
	fmt.Printf("segments: %d before prune, %d after (the active tail always survives)\n",
		before, l.Segments())
	if err := l.Close(); err != nil {
		panic(err)
	}
}
