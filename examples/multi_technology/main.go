// Multi-technology: the paper's design requirement iii demands a
// technology-agnostic REM receiver — "a simple integration of different
// REM-sampling devices (e.g., Wi-Fi, LoRa, BLE, mmWave) with the UAV". This
// example swaps the ESP8266 Wi-Fi deck for a synthetic BLE beacon scanner by
// implementing the same four-instruction driver contract, and flies the
// identical mission plan — nothing else in the toolchain changes.
package main

import (
	"errors"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/propagation"
	"repro/internal/receiver"
	"repro/internal/simrand"
	"repro/internal/spectrum"
)

// bleBeacon is one BLE advertiser (e.g. an asset tag or smart bulb).
type bleBeacon struct {
	addr string
	name string
	pos  geom.Vec3
	txDB float64
}

// bleDriver scans for BLE advertisements. It implements the same §II-A
// four-instruction contract as the ESP8266 Wi-Fi driver.
type bleDriver struct {
	beacons []bleBeacon
	channel *propagation.Channel
	pos     func() geom.Vec3
	itfs    func() []spectrum.Interferer
	rng     *simrand.Source

	inited  bool
	pending []receiver.Measurement
	scanned bool
}

var (
	_ receiver.Driver     = (*bleDriver)(nil)
	_ receiver.Timed      = (*bleDriver)(nil)
	_ receiver.Technology = (*bleDriver)(nil)
)

func (d *bleDriver) Init() error { d.inited = true; return nil }

func (d *bleDriver) Status() error {
	if !d.inited {
		return errors.New("ble: not initialised")
	}
	return nil
}

func (d *bleDriver) TriggerScan() error {
	if err := d.Status(); err != nil {
		return err
	}
	p := d.pos()
	// BLE advertises on three 2.4 GHz channels; reuse the spectrum model
	// for interference by treating advertising channel 38 (2426 MHz) as
	// representative. (Wi-Fi channel 3 is the closest 802.11 centre.)
	scale := spectrum.DetectionScale(d.itfs(), 3)
	d.pending = d.pending[:0]
	for _, b := range d.beacons {
		rss := d.channel.SampleRSS(b.txDB, b.pos, p, d.rng)
		// BLE receivers are sensitive to about −95 dBm.
		p1 := scale / (1 + math.Exp(-(rss+95)/2.0))
		if !d.rng.Bool(p1) {
			continue
		}
		d.pending = append(d.pending, receiver.Measurement{
			Key:     b.addr,
			Name:    b.name,
			RSSI:    int(math.Round(rss)),
			Channel: 38,
		})
	}
	d.scanned = true
	return nil
}

func (d *bleDriver) Results() ([]receiver.Measurement, error) {
	if !d.scanned {
		return nil, errors.New("ble: no scan pending")
	}
	d.scanned = false
	out := make([]receiver.Measurement, len(d.pending))
	copy(out, d.pending)
	return out, nil
}

func (d *bleDriver) ScanDuration() time.Duration { return 1500 * time.Millisecond }
func (d *bleDriver) TechnologyName() string      { return "ble" }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multi_technology:", err)
		os.Exit(1)
	}
}

func run() error {
	env := floorplan.PaperApartment()
	rng := simrand.New(7)

	// A dozen BLE devices scattered through the apartment and neighbours.
	names := []string{"tag", "bulb", "lock", "scale", "watch", "speaker"}
	beacons := make([]bleBeacon, 0, 12)
	for i := 0; i < 12; i++ {
		beacons = append(beacons, bleBeacon{
			addr: fmt.Sprintf("C0:FF:EE:00:00:%02X", i),
			name: fmt.Sprintf("%s-%d", names[i%len(names)], i),
			pos: geom.V(
				rng.Range(-4, 8),
				rng.Range(-4, 7),
				rng.Range(0.2, 2.0),
			),
			txDB: rng.Range(-4, 4), // BLE EIRP ≈ 0 dBm
		})
	}
	ch, err := propagation.NewChannel(propagation.Config{
		PathLoss: propagation.MultiWall{
			Base: propagation.LogDistance{
				PL0:      propagation.ReferenceLossDB(2426),
				D0:       1,
				Exponent: 2.2,
			},
			Env: env,
		},
		ShadowSigmaDB:        3.5,
		ShadowDecorrelationM: 1.5,
		Seed:                 99,
	})
	if err != nil {
		return err
	}

	// Same plan, same toolchain — only the receiver factory differs.
	opts := mission.DefaultOptions(7)
	opts.Receiver = func(pos func() geom.Vec3, itfs func() []spectrum.Interferer) (receiver.Driver, error) {
		return &bleDriver{
			beacons: beacons,
			channel: ch,
			pos:     pos,
			itfs:    itfs,
			rng:     simrand.New(7).Derive("ble-scan"),
		}, nil
	}
	ctrl, err := mission.NewPaperController(opts)
	if err != nil {
		return err
	}
	data, report, err := ctrl.Run()
	if err != nil {
		return err
	}
	for _, s := range report.Sorties {
		fmt.Printf("UAV %s: %d/%d waypoints, %d BLE samples\n",
			s.UAV, s.WaypointsVisited, s.WaypointsPlanned, s.Samples)
	}
	st := data.Stats()
	fmt.Printf("BLE dataset: %d samples from %d devices, mean RSS %.1f dBm\n",
		st.Total, st.DistinctMACs, st.MeanRSSI)
	fmt.Println("\nper-device sample counts:")
	perKey := map[string]int{}
	for _, s := range data.Samples {
		perKey[s.SSID]++
	}
	for _, b := range beacons {
		fmt.Printf("  %-12s at %v: %d samples\n", b.name, b.pos, perKey[b.name])
	}
	return nil
}
