// Fingerprinting: the paper's introduction motivates REMs for RF-based
// indoor localization (Lemic et al.). This example turns the generated REM
// into a fingerprint database: a user device reports the RSS vector it
// observes, and we localise it by finding the grid position whose predicted
// RSS vector matches best (k-nearest fingerprints in signal space).
package main

import (
	"fmt"
	"math"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/simrand"
	"repro/internal/wifi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fingerprinting:", err)
		os.Exit(1)
	}
}

func run() error {
	// Build the REM (the fingerprint training database of [2]).
	cfg := core.DefaultConfig(1)
	cfg.REMResolution = [3]int{14, 12, 7}
	result, err := core.Run(cfg)
	if err != nil {
		return err
	}
	m := result.REM

	// Simulate a user device at a position the UAVs never visited, using
	// the same simulated world (a fresh scan with its own noise).
	ctrl, err := mission.NewPaperController(mission.DefaultOptions(1))
	if err != nil {
		return err
	}
	scanner, err := wifi.NewScanner(ctrl.Network(), wifi.DefaultScanner())
	if err != nil {
		return err
	}
	rng := simrand.New(4242)
	truth := geom.V(2.45, 1.15, 1.30)
	obs := scanner.Scan(truth, nil, rng)
	fmt.Printf("user at %v observes %d APs\n", truth, len(obs))

	observed := map[string]float64{}
	for _, o := range obs {
		observed[o.MAC.String()] = float64(o.RSSI)
	}

	// Match against candidate grid positions in signal space.
	type candidate struct {
		pos  geom.Vec3
		dist float64
	}
	candidates, err := m.Volume().Lattice(16, 14, 8, 0.1)
	if err != nil {
		return err
	}
	scored := make([]candidate, 0, len(candidates))
	for _, p := range candidates {
		var sum float64
		n := 0
		for _, key := range m.Keys() {
			userRSS, seen := observed[key]
			if !seen {
				continue
			}
			mapRSS, err := m.At(key, p)
			if err != nil {
				return err
			}
			d := userRSS - mapRSS
			sum += d * d
			n++
		}
		if n == 0 {
			continue
		}
		scored = append(scored, candidate{pos: p, dist: math.Sqrt(sum / float64(n))})
	}
	sort.Slice(scored, func(i, j int) bool { return scored[i].dist < scored[j].dist })

	// Position estimate: centroid of the k best-matching fingerprints.
	const k = 5
	var est geom.Vec3
	for _, c := range scored[:k] {
		est = est.Add(c.pos)
	}
	est = est.Scale(1.0 / k)
	fmt.Printf("estimated position: %v (signal-space residual %.1f dB)\n", est, scored[0].dist)
	fmt.Printf("true position:      %v\n", truth)
	fmt.Printf("localization error: %.2f m\n", est.Dist(truth))
	return nil
}
