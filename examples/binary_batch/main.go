// Binary batch wire: the compact query protocol on the HTTP hot path.
// A synthetic 4-key, 2-shard store is served over HTTP and queried over
// both wires; the walkthrough shows:
//
//  1. content negotiation: Content-Type: application/x-rem-batch selects
//     the binary request codec on POST /at, Accept selects the binary
//     response codec — the 2×2 request/response matrix is all valid, and
//     clients that say nothing keep getting JSON;
//  2. rule 8 on the binary wire: the response value block carries raw
//     float64 bits, bit-identical to the JSON answers and to direct
//     library calls — and NaN payloads survive, where JSON degrades a
//     non-finite value to null;
//  3. wire economics: a 512-point binary request is ~24 bytes/point and
//     decodes with zero parsing — the reason BENCH_rem.json's binary
//     serving cost sits near the library floor while JSON pays ~7× for
//     float text codec work;
//  4. the compressed snapshot: Accept-Encoding: gzip on GET /snapshot,
//     same strong ETag, decompressed bytes ≡ Map.WriteTo;
//  5. per-client rate limiting: a token-bucket budget (here with an
//     injected clock, so the demo is deterministic) answers 429 +
//     Retry-After past the burst, and /healthz stays exempt.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remserve"
	"repro/internal/remshard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "binary_batch:", err)
		os.Exit(1)
	}
}

// predict is a deterministic synthetic field: value depends on position
// and key only, so every build path produces identical maps and the
// wire comparisons below are exact by construction.
func predict(centers []geom.Vec3, keyIdx int) ([]float64, error) {
	out := make([]float64, len(centers))
	for i, p := range centers {
		out[i] = -55 - 1.5*p.X - 2*p.Y - 3*p.Z - 4*float64(keyIdx)
	}
	return out, nil
}

func run() error {
	// 1. A 4-key vocabulary over 2 shards, built from the synthetic
	// field and served over HTTP.
	keys := []string{"AA:00", "AA:01", "AA:02", "AA:03"}
	vol := geom.Cuboid{Min: geom.V(0, 0, 0), Max: geom.V(8, 6, 4)}
	ss, err := remshard.New(keys, remshard.Config{
		Shards: 2, Volume: vol, Resolution: [3]int{16, 12, 8},
	})
	if err != nil {
		return err
	}
	if _, err := ss.Rebuild([]int{0, 1, 2, 3}, predict, rem.BuildOptions{}); err != nil {
		return err
	}

	// A deterministic clock for the rate-limit demo below: the example
	// advances it by hand, so the 429s land on exactly the same requests
	// every run. The mutex orders the advance against handler reads.
	var clockMu sync.Mutex
	clock := time.Unix(0, 0)
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}
	srv := remserve.NewSharded(ss, remserve.Options{
		RateLimit: remserve.RateLimit{RPS: 1, Burst: 24, Now: now},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			fmt.Fprintln(os.Stderr, "binary_batch: serve:", err)
		}
	}()
	base := "http://" + l.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}
	fmt.Printf("serving %d keys over %d shards\n", len(keys), ss.NumShards())

	// The probe batch: a diagonal walk through the volume.
	const n = 512
	pts := make([]geom.Vec3, n)
	for i := range pts {
		f := float64(i) / float64(n-1)
		pts[i] = geom.V(8*f, 6*f, 4*f)
	}

	// 2. The same batch over both wires. JSON first (the default no
	// client has to opt out of)…
	jpts := make([][3]float64, n)
	for i, p := range pts {
		jpts[i] = [3]float64{p.X, p.Y, p.Z}
	}
	jreq, err := json.Marshal(map[string]any{"key": keys[0], "points": jpts})
	if err != nil {
		return err
	}
	r, err := client.Post(base+"/at", "application/json", bytes.NewReader(jreq))
	if err != nil {
		return err
	}
	var jresp struct {
		Values  []*float64 `json:"values"`
		Version uint64     `json:"version"`
	}
	err = json.NewDecoder(r.Body).Decode(&jresp)
	r.Body.Close()
	if err != nil {
		return err
	}

	// …then binary: Content-Type names the request codec, Accept the
	// response codec.
	breq := remserve.AppendBatchRequest(nil, keys[0], pts)
	req, err := http.NewRequest(http.MethodPost, base+"/at", bytes.NewReader(breq))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", remserve.WireContentType)
	req.Header.Set("Accept", remserve.WireContentType)
	r, err = client.Do(req)
	if err != nil {
		return err
	}
	braw, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return err
	}
	if ct := r.Header.Get("Content-Type"); ct != remserve.WireContentType {
		return fmt.Errorf("binary response Content-Type %q", ct)
	}
	bvals, bver, err := remserve.DecodeBatchResponse(braw)
	if err != nil {
		return err
	}

	// Rule 8, three ways: binary ≡ JSON ≡ direct library, bit for bit.
	direct := make([]float64, n)
	if _, err := ss.AtBatchInto(direct, keys[0], pts); err != nil {
		return err
	}
	for i := range bvals {
		if jresp.Values[i] == nil || math.Float64bits(bvals[i]) != math.Float64bits(*jresp.Values[i]) ||
			math.Float64bits(bvals[i]) != math.Float64bits(direct[i]) {
			return fmt.Errorf("rule 8 violated at point %d", i)
		}
	}
	fmt.Printf("rule 8 over the wire: %d values, binary ≡ JSON ≡ direct library (v%d)\n", n, bver)

	// 3. Wire economics: bytes per point on each wire.
	fmt.Printf("request:  JSON %5d bytes (%.1f/pt)   binary %5d bytes (%.1f/pt)\n",
		len(jreq), float64(len(jreq))/n, len(breq), float64(len(breq))/n)
	fmt.Printf("response: binary %d bytes — the value block is raw IEEE-754, no text codec\n", len(braw))

	// 4. The compressed snapshot: same strong ETag as identity, and the
	// decompressed bytes are exactly the snapshot codec.
	r, err = client.Get(base + "/snapshot")
	if err != nil {
		return err
	}
	identity, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return err
	}
	etag := r.Header.Get("ETag")
	req, err = http.NewRequest(http.MethodGet, base+"/snapshot", nil)
	if err != nil {
		return err
	}
	// Setting Accept-Encoding by hand disables Go's transparent
	// decompression: the body below is the raw gzip stream.
	req.Header.Set("Accept-Encoding", "gzip")
	r, err = client.Do(req)
	if err != nil {
		return err
	}
	compressed, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		return err
	}
	if r.Header.Get("ETag") != etag {
		return fmt.Errorf("gzip ETag %q differs from identity %q", r.Header.Get("ETag"), etag)
	}
	zr, err := gzip.NewReader(bytes.NewReader(compressed))
	if err != nil {
		return err
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		return err
	}
	if !bytes.Equal(plain, identity) {
		return fmt.Errorf("decompressed snapshot differs from identity bytes")
	}
	fmt.Printf("snapshot: %d bytes identity, %d gzipped (same ETag %s); decompressed ≡ codec\n",
		len(identity), len(compressed), etag)

	// 5. Rate limiting: the 24-token burst is spent (the requests above
	// used some of it), then every further request is refused with a
	// Retry-After until the injected clock refills the bucket.
	var served, throttled int
	var retryAfter string
	for i := 0; i < 30; i++ {
		r, err := client.Get(base + "/at?key=" + keys[0] + "&x=1&y=1&z=1")
		if err != nil {
			return err
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		switch r.StatusCode {
		case http.StatusOK:
			served++
		case http.StatusTooManyRequests:
			throttled++
			retryAfter = r.Header.Get("Retry-After")
		default:
			return fmt.Errorf("rate-limit probe: %s", r.Status)
		}
	}
	fmt.Printf("rate limit: %d served, %d × 429 (Retry-After %s s); /healthz exempt: ", served, throttled, retryAfter)
	r, err = client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	fmt.Println(r.Status)

	// Advance the injected clock: tokens refill, queries serve again.
	advance(10 * time.Second)
	r, err = client.Get(base + "/at?key=" + keys[0] + "&x=1&y=1&z=1")
	if err != nil {
		return err
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	fmt.Printf("after a 10 s clock advance: %s — the bucket refilled\n", r.Status)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}
