// Package repro is a from-scratch Go reproduction of "Small UAVs-supported
// Autonomous Generation of Fine-grained 3D Indoor Radio Environmental Maps"
// (Mendes, Lemic, Famaey — ICDCS 2022). The library lives under internal/,
// the executables under cmd/, runnable examples under examples/, and the
// top-level benchmarks in bench_test.go regenerate every table and figure of
// the paper. README.md covers usage; DESIGN.md covers the architecture, the
// experiment index (E1–E11) and the concurrency/determinism contract.
package repro
