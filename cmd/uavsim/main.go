// Command uavsim flies the paper's two-UAV validation mission in the
// simulated apartment and dumps the collected location-annotated dataset as
// CSV, together with a flight report on stderr.
//
// Usage:
//
//	uavsim -seed 1 -o dataset.csv
//	uavsim -mode twr -no-mitigation
//	uavsim -stock-firmware          # demonstrate the unpatched failure
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/mission"
	"repro/internal/uwb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uavsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed         = flag.Uint64("seed", 1, "master seed for the simulated world")
		out          = flag.String("o", "-", "output CSV path ('-' for stdout)")
		mode         = flag.String("mode", "tdoa", "localization mode: twr or tdoa")
		noMitigation = flag.Bool("no-mitigation", false, "keep the Crazyradio on during scans (E8 ablation)")
		stock        = flag.Bool("stock-firmware", false, "use the unpatched watchdog/queue/no-feedback-task firmware")
	)
	flag.Parse()

	opts := mission.DefaultOptions(*seed)
	switch *mode {
	case "twr":
		opts.LocalizationMode = uwb.TWR
	case "tdoa":
		opts.LocalizationMode = uwb.TDoA
	default:
		return fmt.Errorf("unknown mode %q (want twr or tdoa)", *mode)
	}
	opts.DisableMitigation = *noMitigation
	opts.StockFirmware = *stock

	ctrl, err := mission.NewPaperController(opts)
	if err != nil {
		return err
	}
	data, report, err := ctrl.Run()
	if err != nil {
		return err
	}

	for _, s := range report.Sorties {
		status := "completed"
		if s.Err != nil {
			status = "FAILED: " + s.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "UAV %s: %d/%d waypoints, %d samples, active %v, battery used %.0f%%, %s\n",
			s.UAV, s.WaypointsVisited, s.WaypointsPlanned, s.Samples,
			s.ActiveTime.Round(time.Second), 100*s.BatteryUsedFrac, status)
	}
	st := data.Stats()
	fmt.Fprintf(os.Stderr, "dataset: %d samples, %d MACs, %d SSIDs, mean RSS %.1f dBm\n",
		st.Total, st.DistinctMACs, st.DistinctSSIDs, st.MeanRSSI)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "uavsim: closing output:", cerr)
			}
		}()
		w = f
	}
	return data.WriteCSV(w)
}
