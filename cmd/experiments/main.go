// Command experiments regenerates every table and figure of the paper's
// evaluation, plus this repository's ablations. Each experiment prints an
// aligned text table with the paper's reference numbers alongside.
//
// Usage:
//
//	experiments -all
//	experiments -fig5 -fig8 -seed 7
//	experiments -stats -fig6 -fig7
//	experiments -endurance -anchors -mitigation -density
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed       = flag.Uint64("seed", 1, "master seed for the simulated world")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size for parallel experiments (results are identical for any value)")
		all        = flag.Bool("all", false, "run every experiment")
		fig5       = flag.Bool("fig5", false, "E1: Crazyradio interference per Wi-Fi channel (Figure 5)")
		endurance  = flag.Bool("endurance", false, "E2: battery endurance under periodic scanning")
		stats      = flag.Bool("stats", false, "E3: dataset statistics of the validation mission")
		fig6       = flag.Bool("fig6", false, "E4: samples per UAV and scanned location (Figure 6)")
		fig7       = flag.Bool("fig7", false, "E5: sample histograms in 0.5 m bins (Figure 7)")
		fig8       = flag.Bool("fig8", false, "E6: estimator RMSE comparison (Figure 8)")
		extended   = flag.Bool("extended", false, "add IDW/kriging estimators to -fig8")
		anchors    = flag.Bool("anchors", false, "E7: localization accuracy vs anchor count")
		mitigation = flag.Bool("mitigation", false, "E8: radio-off-during-scan ablation")
		density    = flag.Bool("density", false, "E9: waypoint-density sweep")
		gridsearch = flag.Bool("gridsearch", false, "E10: reproduce the §III-B kNN hyper-parameter grid search")
		lh         = flag.Bool("lighthouse", false, "E11: Lighthouse vs UWB localization (§IV future work)")
	)
	flag.Parse()

	any := *fig5 || *endurance || *stats || *fig6 || *fig7 || *fig8 || *anchors || *mitigation || *density || *gridsearch || *lh
	if !any && !*all {
		flag.Usage()
		return fmt.Errorf("select at least one experiment or -all")
	}
	out := os.Stdout
	section := func(id string) { fmt.Fprintf(out, "\n================ %s ================\n", id) }

	if *all || *fig5 {
		section("E1 / Figure 5")
		r, err := experiments.Figure5(*seed, *workers)
		if err != nil {
			return err
		}
		if err := r.WriteText(out); err != nil {
			return err
		}
	}
	if *all || *endurance {
		section("E2 / endurance")
		r, err := experiments.Endurance(*seed)
		if err != nil {
			return err
		}
		if err := r.WriteText(out); err != nil {
			return err
		}
	}
	if *all || *stats || *fig6 || *fig7 {
		r, err := experiments.RunMission(*seed)
		if err != nil {
			return err
		}
		if *all || *stats {
			section("E3 / dataset statistics")
			if err := r.WriteStats(out); err != nil {
				return err
			}
		}
		if *all || *fig6 {
			section("E4 / Figure 6")
			if err := r.WriteFigure6(out); err != nil {
				return err
			}
		}
		if *all || *fig7 {
			section("E5 / Figure 7")
			if err := r.WriteFigure7(out); err != nil {
				return err
			}
		}
	}
	if *all || *fig8 {
		section("E6 / Figure 8")
		r, err := experiments.Figure8(*seed, *extended, *workers)
		if err != nil {
			return err
		}
		if err := r.WriteText(out); err != nil {
			return err
		}
	}
	if *all || *anchors {
		section("E7 / anchor ablation")
		r, err := experiments.AnchorAblation(*seed, *workers)
		if err != nil {
			return err
		}
		if err := r.WriteText(out); err != nil {
			return err
		}
	}
	if *all || *mitigation {
		section("E8 / mitigation ablation")
		r, err := experiments.MitigationAblation(*seed, *workers)
		if err != nil {
			return err
		}
		if err := r.WriteText(out); err != nil {
			return err
		}
	}
	if *all || *density {
		section("E9 / density sweep")
		r, err := experiments.DensitySweep(*seed, *workers)
		if err != nil {
			return err
		}
		if err := r.WriteText(out); err != nil {
			return err
		}
	}
	if *all || *gridsearch {
		section("E10 / hyper-parameter grid search")
		r, err := experiments.GridSearchReproduction(*seed, *workers)
		if err != nil {
			return err
		}
		if err := r.WriteText(out); err != nil {
			return err
		}
	}
	if *all || *lh {
		section("E11 / Lighthouse vs UWB")
		r, err := experiments.LighthouseComparison(*seed)
		if err != nil {
			return err
		}
		if err := r.WriteText(out); err != nil {
			return err
		}
	}
	return nil
}
