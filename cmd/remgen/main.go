// Command remgen runs the complete toolchain of the paper end to end:
// simulate the two-UAV survey, preprocess the dataset, train and compare the
// Figure 8 estimator suite, build the fine-grained 3-D REM from the winner,
// and export it as CSV.
//
// With -stream, remgen runs the live-serving pipeline instead: the
// mission's samples are consumed in windows, each window incrementally
// refits the estimator and publishes a copy-on-write REM snapshot into a
// concurrent store, and the per-window delta (dirty keys, shared tiles)
// is reported. The final snapshot is exported.
//
// With -serve, the streamed store is additionally fronted by the
// remserve HTTP subsystem from the moment the stream starts: clients
// query /at, /strongest, /stats and download /snapshot while windows
// keep publishing underneath, and after the stream completes remgen
// keeps serving the final generation until interrupted. SIGINT/SIGTERM
// shut down gracefully: the stream stops between windows and the server
// drains in-flight queries.
//
// Usage:
//
//	remgen -o rem.csv
//	remgen -seed 7 -res 20x16x10 -extended
//	remgen -dataset stored.csv -o rem.csv   # re-analyse a stored mission
//	remgen -stream -window 400 -o rem.csv   # windowed incremental serving
//	remgen -stream -shards 4 -o rem.csv     # sharded stores, per-shard rebuilds
//	remgen -stream -shards 4 -serve 127.0.0.1:8080   # HTTP query front
//	remgen -stream -serve 127.0.0.1:8080 -rate 50    # per-client rate limit
//	remgen -stream -snapshot rem.remt       # binary codec export (rem.ReadFrom)
//
// With -query, remgen is instead a batch query client against a running
// -serve instance: it POSTs the points to /at over the JSON or the
// binary wire (-wire) and prints one value per line — the output is
// identical for both wires (rule 8 over the wire), which is exactly
// what the CI smoke diffs:
//
//	remgen -query http://127.0.0.1:8080 -key aa:.. -points "1,2,3;4,5,6" -wire binary
//
// With -mode strongest, the client POSTs to /strongest instead: no key,
// one "key value" line per point (the best server at that point) —
// again identical across both wires:
//
//	remgen -query http://127.0.0.1:8080 -mode strongest -points "1,2,3;4,5,6"
//
// With -ingest, remgen is a live ingestion server: it bootstraps the
// estimator on the mission's survey, serves it on -serve, and accepts
// observation batches on POST /observe (JSON or the binary "REMO"
// wire) — each accepted batch incrementally refits the estimator and
// publishes a new snapshot. With -wal DIR every batch is persisted to
// a write-ahead log before it is acknowledged, and a restart with the
// same -wal replays the log into byte-identical snapshots (determinism
// contract rule 10):
//
//	remgen -ingest -serve 127.0.0.1:8080 -wal /var/lib/rem/wal -ingest-token s3cret
//
// With -follow, remgen is a replica: it polls a running -serve leader,
// pulls tile deltas (full snapshots only on first contact or after
// corruption), and serves the replicated REM on -serve through leader
// outages — stale reads keep working, /healthz flips to 503 past the
// staleness bound, and the follower resyncs automatically when the
// leader returns:
//
//	remgen -follow http://127.0.0.1:8080 -serve 127.0.0.1:8081 -poll 500ms -staleness 10s
//
// Every server mode takes -metrics (instrument the stack and expose
// Prometheus text on GET /metrics of -serve), -pprof ADDR (a
// net/http/pprof side listener) and -events N (a bounded in-memory ring
// of generation lifecycle events — publishes, WAL appends, follower
// syncs — dumped to stderr on SIGUSR1 and at exit):
//
//	remgen -ingest -serve 127.0.0.1:8080 -wal wal/ -metrics -pprof 127.0.0.1:6060 -events 256
//	curl -s http://127.0.0.1:8080/metrics | grep rem_wal_fsync_seconds
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof side listener (DefaultServeMux)
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/rem"
	"repro/internal/remfollow"
	"repro/internal/remobs"
	"repro/internal/remserve"
	"repro/internal/remshard"
	"repro/internal/remstore"
	"repro/internal/remwal"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "remgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed      = flag.Uint64("seed", 1, "master seed for the simulated world")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size for training, evaluation and REM rasterisation (results are identical for any value)")
		out       = flag.String("o", "-", "REM CSV output path ('-' for stdout)")
		res       = flag.String("res", "12x10x6", "REM grid resolution as NXxNYxNZ")
		extended  = flag.Bool("extended", false, "include IDW/kriging estimators")
		dataCSV   = flag.String("dataset", "", "optional stored dataset CSV to re-analyse instead of flying")
		dark      = flag.Float64("dark", -85, "dark-region threshold in dBm for the coverage summary")
		slice     = flag.Float64("slice", -1, "if ≥ 0, render an ASCII heatmap of the strongest AP at this height (m) to stderr")
		stream    = flag.Bool("stream", false, "run the windowed incremental pipeline: one published REM snapshot per sample window")
		window    = flag.Int("window", 0, "with -stream, preprocessed rows per window (≤0 splits the mission into 4 windows)")
		history   = flag.Int("history", 0, "with -stream or -follow, retained snapshot history (≤0 uses the store default)")
		shards    = flag.Int("shards", 0, "with -stream, partition the vocabulary across N independent stores (hash-by-MAC routing); only the shards a window dirties rebuild and publish")
		serve     = flag.String("serve", "", "with -stream or -follow, serve over HTTP on this address (e.g. 127.0.0.1:8080); SIGINT/SIGTERM stop cleanly")
		rate      = flag.Float64("rate", 0, "with -serve, per-client request budget in requests/second (token bucket keyed by client IP; 0 disables)")
		snapOut   = flag.String("snapshot", "", "also export the final REM in the binary snapshot codec (rem.ReadFrom loads it) to this path")
		ingest    = flag.Bool("ingest", false, "live ingestion server: bootstrap on the survey, then accept observation batches on POST /observe of -serve, one published snapshot per batch")
		walDir    = flag.String("wal", "", "with -ingest, persist accepted batches to a write-ahead log in this directory; a restart replays it into identical snapshots")
		ingestTok = flag.String("ingest-token", "", "with -ingest, require 'Authorization: Bearer TOKEN' on POST /observe")
		ingestCap = flag.Int("ingest-queue", 0, "with -ingest, the bounded ingest-queue capacity; a full queue answers 429 + Retry-After (≤0 uses the default)")
		follow    = flag.String("follow", "", "follower mode: base URL of a running -serve leader to replicate (delta sync); serve the replica on -serve, stop with SIGINT/SIGTERM")
		poll      = flag.Duration("poll", 0, "with -follow, the leader poll interval (0 uses the follower default)")
		staleness = flag.Duration("staleness", 0, "with -follow, how old the last successful sync may get before /healthz reports 503 stale (0 uses the follower default)")
		query     = flag.String("query", "", "query client mode: base URL of a running -serve instance (e.g. http://127.0.0.1:8080); POSTs -points for -key to /at and prints one value per line")
		queryKey  = flag.String("key", "", "with -query, the source key to query")
		points    = flag.String("points", "", "with -query, the batch points as 'x,y,z;x,y,z;…' (z may be omitted)")
		wire      = flag.String("wire", "json", "with -query, the wire format: json or binary (the printed values are identical)")
		queryMode = flag.String("mode", "at", "with -query, the endpoint: 'at' (one key, one value per line) or 'strongest' (best server, 'key value' per line)")
		metrics   = flag.Bool("metrics", false, "instrument the pipeline and expose Prometheus text on GET /metrics of -serve (leader, ingester and follower alike)")
		pprofFlg  = flag.String("pprof", "", "serve net/http/pprof on a side listener at this address (e.g. 127.0.0.1:6060)")
		events    = flag.Int("events", 0, "with -metrics, capacity of the generation event ring, dumped to stderr on SIGUSR1 and at exit (≤0 uses the default)")
	)
	flag.Parse()

	if *query != "" {
		if *metrics || *pprofFlg != "" || *events != 0 {
			return errors.New("-metrics, -pprof and -events instrument the server modes; they have no effect with -query")
		}
		switch *queryMode {
		case "at":
			return runQuery(*query, *queryKey, *points, *wire)
		case "strongest":
			return runQueryStrongest(*query, *points, *wire)
		default:
			return fmt.Errorf("unknown -mode %q (want at or strongest)", *queryMode)
		}
	}
	obs, obsDone, err := setupObservability(*metrics, *events, *pprofFlg)
	if err != nil {
		return err
	}
	defer obsDone()
	if *follow != "" {
		return runFollow(*follow, *serve, *poll, *staleness, *history, obs)
	}
	if *poll != 0 || *staleness != 0 {
		return errors.New("-poll and -staleness configure the follower; add -follow URL")
	}

	cfg := core.DefaultConfig(*seed)
	cfg.Workers = *workers
	var nx, ny, nz int
	if _, err := fmt.Sscanf(*res, "%dx%dx%d", &nx, &ny, &nz); err != nil {
		return fmt.Errorf("bad -res %q: %w", *res, err)
	}
	cfg.REMResolution = [3]int{nx, ny, nz}
	if *extended {
		cfg.Estimators = core.ExtendedEstimators(*seed)
	}

	var stored *dataset.Dataset
	if *dataCSV != "" {
		f, err := os.Open(*dataCSV)
		if err != nil {
			return err
		}
		data, rerr := dataset.ReadCSV(f)
		if cerr := f.Close(); cerr != nil && rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return rerr
		}
		stored = data
	}

	if *ingest {
		if *stream {
			return errors.New("-ingest and -stream are exclusive: ingestion is batch-driven, streaming is window-driven")
		}
		if *shards != 0 {
			return errors.New("-ingest serves a monolithic store; -shards only applies to -stream")
		}
		if *serve == "" {
			return errors.New("-ingest needs -serve ADDR: the batches arrive on POST /observe")
		}
		if *extended {
			return errors.New("-extended has no effect with -ingest: ingestion serves a single estimator")
		}
		return runIngest(cfg, stored, ingestOpts{
			history: *history, out: *out, snapOut: *snapOut,
			serve: *serve, rate: *rate, dark: *dark, slice: *slice,
			wal: *walDir, token: *ingestTok, queue: *ingestCap,
			obs: obs,
		})
	}
	if *walDir != "" || *ingestTok != "" || *ingestCap != 0 {
		return errors.New("-wal, -ingest-token and -ingest-queue configure the ingestion server; add -ingest")
	}
	if *stream {
		if *extended {
			return fmt.Errorf("-extended has no effect with -stream: streaming serves a single estimator, not the Figure 8 suite")
		}
		return runStream(cfg, stored, streamOpts{
			window: *window, history: *history, shards: *shards,
			out: *out, snapOut: *snapOut, serve: *serve, rate: *rate,
			dark: *dark, slice: *slice, obs: obs,
		})
	}
	if *window != 0 || *history != 0 || *shards != 0 || *serve != "" {
		return fmt.Errorf("-window, -history, -shards and -serve configure the streaming pipeline; add -stream")
	}

	var result *core.Result
	if stored != nil {
		result, err = core.RunWithDataset(cfg, stored, nil)
		if err != nil {
			return err
		}
	} else {
		result, err = core.Run(cfg)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "dataset: %d samples (%d retained after preprocessing)\n",
		result.Data.Len(), len(result.Pre.Rows))
	fmt.Fprintln(os.Stderr, "estimator comparison (Figure 8):")
	for i, s := range result.Scores {
		marker := ""
		if i == result.Best {
			marker = "  ← best"
		}
		fmt.Fprintf(os.Stderr, "  %-30s RMSE %.4f dB  MAE %.4f dB%s\n", s.Name, s.RMSE, s.MAE, marker)
	}

	m := result.REM
	if err := reportMap(m, *dark, *slice); err != nil {
		return err
	}
	if err := writeSnapshotOut(m, *snapOut); err != nil {
		return err
	}
	return writeCSVOut(m, *out)
}

// setupObservability builds the optional side-kit shared by every
// server mode: the Observer (-metrics / -events) handed down the
// pipeline, a net/http/pprof listener (-pprof), and the event-ring
// dump — on SIGUSR1 while running, and once more through the returned
// cleanup at exit.
func setupObservability(metrics bool, events int, pprofAddr string) (*remobs.Observer, func(), error) {
	var obs *remobs.Observer
	if metrics || events != 0 {
		obs = remobs.New(events)
	}
	cleanup := func() {}
	if obs != nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGUSR1)
		go func() {
			for range sig {
				fmt.Fprintln(os.Stderr, "remgen: event ring (SIGUSR1):")
				obs.Events.Dump(os.Stderr)
			}
		}()
		cleanup = func() {
			signal.Stop(sig)
			if obs.Events.Len() > 0 {
				fmt.Fprintln(os.Stderr, "remgen: event ring at exit:")
				obs.Events.Dump(os.Stderr)
			}
		}
	}
	if pprofAddr != "" {
		l, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			cleanup()
			return nil, nil, fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pprof on http://%s/debug/pprof/\n", l.Addr())
		// net/http/pprof registered its handlers on DefaultServeMux at
		// import; the side listener serves nothing else.
		go func() { _ = http.Serve(l, nil) }()
		prev := cleanup
		cleanup = func() { l.Close(); prev() }
	}
	return obs, cleanup, nil
}

// runQuery is the -query client: one batch POST to /at of a running
// -serve instance, over the JSON or the binary wire. Both wires print
// the same lines — one shortest-round-trip decimal per value, "null"
// for a non-finite one — so the CI smoke can diff the two outputs
// byte for byte (rule 8 over the wire). The serving snapshot version
// goes to stderr.
func runQuery(base, key, pointsSpec, wire string) error {
	if key == "" || pointsSpec == "" {
		return errors.New("-query needs -key and -points")
	}
	pts, err := parsePoints(pointsSpec)
	if err != nil {
		return err
	}
	url := strings.TrimRight(base, "/") + "/at"

	var vals []float64
	var version uint64
	switch wire {
	case "json":
		body, err := json.Marshal(struct {
			Key    string       `json:"key"`
			Points [][3]float64 `json:"points"`
		}{key, pts})
		if err != nil {
			return err
		}
		resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return rerr
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /at: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		var out struct {
			Values  []*float64 `json:"values"`
			Version uint64     `json:"version"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			return err
		}
		vals = make([]float64, len(out.Values))
		for i, v := range out.Values {
			if v == nil {
				vals[i] = math.NaN() // prints as "null", like the JSON wire sent it
			} else {
				vals[i] = *v
			}
		}
		version = out.Version
	case "binary":
		gpts := make([]geom.Vec3, len(pts))
		for i, p := range pts {
			gpts[i] = geom.Vec3{X: p[0], Y: p[1], Z: p[2]}
		}
		body := remserve.AppendBatchRequest(nil, key, gpts)
		req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", remserve.WireContentType)
		req.Header.Set("Accept", remserve.WireContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return rerr
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /at: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		if vals, version, err = remserve.DecodeBatchResponse(raw); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -wire %q (want json or binary)", wire)
	}

	fmt.Fprintf(os.Stderr, "version %d (%s wire, %d values)\n", version, wire, len(vals))
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			fmt.Println("null")
		} else {
			fmt.Println(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	return nil
}

// runQueryStrongest is the -query -mode strongest client: one batch
// POST to /strongest, over the JSON or the binary wire, printing one
// "key value" line per point ("null" for a non-finite value). Like
// runQuery, both wires print identical lines — the CI smoke diffs them.
func runQueryStrongest(base, pointsSpec, wire string) error {
	if pointsSpec == "" {
		return errors.New("-query -mode strongest needs -points")
	}
	pts, err := parsePoints(pointsSpec)
	if err != nil {
		return err
	}
	url := strings.TrimRight(base, "/") + "/strongest"

	var keys []string
	var vals []float64
	var version uint64
	switch wire {
	case "json":
		body, err := json.Marshal(struct {
			Points [][3]float64 `json:"points"`
		}{pts})
		if err != nil {
			return err
		}
		resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return rerr
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /strongest: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		var out struct {
			Keys    []string   `json:"keys"`
			Values  []*float64 `json:"values"`
			Version uint64     `json:"version"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			return err
		}
		keys = out.Keys
		vals = make([]float64, len(out.Values))
		for i, v := range out.Values {
			if v == nil {
				vals[i] = math.NaN() // prints as "null", like the JSON wire sent it
			} else {
				vals[i] = *v
			}
		}
		version = out.Version
	case "binary":
		gpts := make([]geom.Vec3, len(pts))
		for i, p := range pts {
			gpts[i] = geom.Vec3{X: p[0], Y: p[1], Z: p[2]}
		}
		body := remserve.AppendStrongestRequest(nil, gpts)
		req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", remserve.WireContentType)
		req.Header.Set("Accept", remserve.WireContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return rerr
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /strongest: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		if keys, vals, version, err = remserve.DecodeStrongestResponse(raw); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -wire %q (want json or binary)", wire)
	}
	if len(keys) != len(vals) {
		return fmt.Errorf("response has %d keys for %d values", len(keys), len(vals))
	}

	fmt.Fprintf(os.Stderr, "version %d (%s wire, %d points)\n", version, wire, len(keys))
	for i, k := range keys {
		if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
			fmt.Printf("%s null\n", k)
		} else {
			fmt.Printf("%s %s\n", k, strconv.FormatFloat(vals[i], 'g', -1, 64))
		}
	}
	return nil
}

// runFollow is the -follow replica: a remfollow.Follower polling the
// leader for tile deltas and serving the replicated store on addr. The
// sync loop and the HTTP front run until SIGINT/SIGTERM; the loop is
// deliberately unkillable by leader failures — it backs off, resyncs,
// and keeps serving the last good generation throughout.
func runFollow(leader, addr string, poll, staleness time.Duration, history int, obs *remobs.Observer) error {
	if addr == "" {
		return errors.New("-follow needs -serve ADDR to expose the replica")
	}
	f, err := remfollow.New(remfollow.Config{
		Leader:       leader,
		Poll:         poll,
		MaxStaleness: staleness,
		History:      history,
		Observer:     obs,
	})
	if err != nil {
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "following %s; serving replica on http://%s\n", leader, l.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- f.Serve(l) }()

	runDone := make(chan struct{})
	go func() { f.Run(ctx); close(runDone) }()

	select {
	case err := <-serveErr:
		cancel()
		<-runDone
		if err != nil {
			return err
		}
		return errors.New("remgen: replica HTTP server stopped unexpectedly")
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "remgen: interrupted; draining replica queries")
		<-runDone
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := f.Shutdown(sctx); err != nil {
			return err
		}
		s := f.SyncStats()
		fmt.Fprintf(os.Stderr, "replica: version %s, %d syncs (%d deltas, %d fulls, %d unchanged), %d failures, %d resyncs\n",
			s.Version, s.Syncs, s.Deltas, s.Fulls, s.NotModified, s.Failures, s.Resyncs)
		return <-serveErr
	}
}

// parsePoints parses the -points spec: semicolon-separated triples of
// comma-separated coordinates, z optional ("1,2;3,4,5").
func parsePoints(spec string) ([][3]float64, error) {
	var pts [][3]float64
	for _, group := range strings.Split(spec, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		comps := strings.Split(group, ",")
		if len(comps) != 2 && len(comps) != 3 {
			return nil, fmt.Errorf("bad point %q: want x,y or x,y,z", group)
		}
		var p [3]float64
		for i, c := range comps {
			v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
			if err != nil {
				return nil, fmt.Errorf("bad point %q: %w", group, err)
			}
			p[i] = v
		}
		pts = append(pts, p)
	}
	if len(pts) == 0 {
		return nil, errors.New("-points is empty")
	}
	return pts, nil
}

// reportMap writes the REM summary, coverage figures and the optional
// slice heatmap to stderr — shared by the batch and streaming paths so
// their reporting cannot drift apart.
func reportMap(m *rem.Map, dark, slice float64) error {
	centre := geom.PaperScanVolume().Center()
	bestKey, bestRSS := m.Strongest(centre)
	fmt.Fprintf(os.Stderr, "REM: %d sources over %v; strongest at centre: %s (%.1f dBm)\n",
		len(m.Keys()), m.Volume().Size(), bestKey, bestRSS)
	fmt.Fprintf(os.Stderr, "coverage ≥ %.0f dBm over %.1f%% of the volume (%d dark cells)\n",
		dark, 100*m.CoverageFraction(dark), len(m.DarkRegions(dark)))
	if slice >= 0 {
		s, err := m.SliceAt(bestKey, slice, 60, 24)
		if err != nil {
			return err
		}
		if err := s.Render(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}

// streamOpts gathers the streaming-mode flags.
type streamOpts struct {
	window, history, shards int
	out, snapOut, serve     string
	rate                    float64
	dark, slice             float64
	obs                     *remobs.Observer
}

// runStream drives the windowed incremental pipeline — monolithic, or
// sharded with -shards — and exports the final snapshot (for a sharded
// store, the merged monolithic view, byte-identical to what the
// monolithic stream would serve). With -serve the store is fronted by
// the remserve HTTP subsystem from the first window on; the final
// generation keeps serving after the stream until SIGINT/SIGTERM, which
// also cancels a still-running stream between windows.
func runStream(base core.Config, stored *dataset.Dataset, opts streamOpts) error {
	shards := opts.shards
	cfg := core.StreamConfig{
		Config:     base,
		WindowRows: opts.window,
		MaxHistory: opts.history,
		Observer:   opts.obs,
	}
	if shards > 0 {
		cfg.Shards = shards
		cfg.OnShardWindow = func(rep core.WindowReport, round remshard.Round) {
			fmt.Fprintf(os.Stderr, "window %d: +%d rows (%d total) → round %d: %d keys dirty across %d/%d shards, %d tiles shared\n",
				rep.Window, rep.NewRows, rep.TotalRows, rep.Version, rep.DirtyKeys, rep.Shards, shards, rep.SharedTiles)
		}
	} else {
		cfg.OnWindow = func(rep core.WindowReport, snap *remstore.Snapshot) {
			built, shared := snap.BuildStats()
			fmt.Fprintf(os.Stderr, "window %d: +%d rows (%d total) → snapshot v%d: %d/%d keys rebuilt, %d tiles shared\n",
				rep.Window, rep.NewRows, rep.TotalRows, rep.Version, built, len(snap.Map().Keys()), shared)
		}
	}

	var srv *remserve.Server
	serveErr := make(chan error, 1)
	if opts.serve != "" {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		cfg.Context = ctx
		cfg.OnStore = func(st *remstore.Store, ss *remshard.ShardedStore) {
			sopts := remserve.Options{RateLimit: remserve.RateLimit{RPS: opts.rate}, Observer: opts.obs}
			if ss != nil {
				srv = remserve.NewSharded(ss, sopts)
			} else {
				srv = remserve.NewStore(st, sopts)
			}
			l, err := net.Listen("tcp", opts.serve)
			if err != nil {
				serveErr <- err
				cancel() // no edge to serve through; stop the stream too
				return
			}
			fmt.Fprintf(os.Stderr, "serving REM queries on http://%s\n", l.Addr())
			go func() { serveErr <- srv.Serve(l) }()
		}
	}

	var res *core.StreamResult
	var err error
	if stored != nil {
		res, err = core.RunStreamWithDataset(cfg, stored, nil)
	} else {
		res, err = core.RunStream(cfg)
	}
	cancelled := err != nil && errors.Is(err, context.Canceled)
	if err != nil && !cancelled {
		shutdownServer(srv)
		select {
		case serr := <-serveErr:
			if serr != nil {
				return fmt.Errorf("%w (HTTP front: %v)", err, serr)
			}
		default:
		}
		return err
	}
	if cancelled {
		// A bind failure cancels the stream through the same context a
		// signal does — surface it instead of reporting a clean stop.
		select {
		case serr := <-serveErr:
			if serr != nil {
				return fmt.Errorf("starting HTTP front: %w", serr)
			}
		default:
		}
		fmt.Fprintf(os.Stderr, "remgen: %v\n", err)
		return shutdownServer(srv)
	}
	if err := reportStream(res, shards, opts); err != nil {
		shutdownServer(srv)
		return err
	}
	if srv != nil {
		fmt.Fprintln(os.Stderr, "stream complete; serving until interrupted (Ctrl-C)")
		select {
		case serr := <-serveErr:
			// The listener died (or never bound) — surface that.
			shutdownServer(srv)
			if serr != nil {
				return serr
			}
			return errors.New("remgen: HTTP server stopped unexpectedly")
		case <-cfg.Context.Done():
			fmt.Fprintln(os.Stderr, "remgen: interrupted; draining queries")
			return shutdownServer(srv)
		}
	}
	return nil
}

// ingestOpts gathers the ingestion-mode flags.
type ingestOpts struct {
	history      int
	out, snapOut string
	serve        string
	rate         float64
	dark, slice  float64
	wal, token   string
	queue        int
	obs          *remobs.Observer
}

// runIngest drives the live ingestion server: open (and replay) the
// WAL, bootstrap the estimator on the survey, front the store with
// remserve — POST /observe enabled — and publish one snapshot per
// accepted batch until SIGINT/SIGTERM. Shutdown is ordered for
// durability: the HTTP edge drains first (no more acks), then the WAL
// segment is fsynced and closed, so every acknowledged batch is intact
// on disk when the process exits and the next -wal run replays it.
func runIngest(base core.Config, stored *dataset.Dataset, opts ingestOpts) error {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var wal *remwal.Log
	queueCfg := remwal.QueueConfig{Capacity: opts.queue}
	var replay []remwal.Batch
	if opts.wal != "" {
		l, recs, err := remwal.Open(remwal.Config{Dir: opts.wal, Observer: opts.obs})
		if err != nil {
			return err
		}
		wal = l
		queueCfg.Log = l
		batches, good := remwal.Batches(recs)
		if good != len(recs) {
			return fmt.Errorf("wal %s: record %d does not decode as an observation batch (wrong directory?)", opts.wal, recs[good].Seq)
		}
		replay = batches
		fmt.Fprintf(os.Stderr, "wal %s: replaying %d batch(es)\n", opts.wal, len(replay))
	}
	q := remwal.NewQueue(queueCfg)
	q.SetObserver(opts.obs)

	var srv *remserve.Server
	serveErr := make(chan error, 1)
	cfg := core.IngestConfig{
		Config:     base,
		MaxHistory: opts.history,
		Queue:      q,
		Replay:     replay,
		Context:    ctx,
		Observer:   opts.obs,
		OnStore: func(st *remstore.Store) {
			srv = remserve.NewStore(st, remserve.Options{
				RateLimit: remserve.RateLimit{RPS: opts.rate},
				Ingest:    remserve.IngestOptions{Queue: q, Token: opts.token},
				Observer:  opts.obs,
			})
			l, err := net.Listen("tcp", opts.serve)
			if err != nil {
				serveErr <- err
				cancel() // no edge to ingest through; stop the loop too
				return
			}
			fmt.Fprintf(os.Stderr, "serving REM queries and POST /observe on http://%s\n", l.Addr())
			go func() { serveErr <- srv.Serve(l) }()
		},
		OnBatch: func(rep core.IngestReport) {
			src := "live"
			if rep.Replayed {
				src = "replay"
			}
			fmt.Fprintf(os.Stderr, "batch %d (%s): +%d rows → snapshot v%d: %d keys dirty, %d tiles shared\n",
				rep.Seq, src, rep.Rows, rep.Version, rep.DirtyKeys, rep.SharedTiles)
		},
	}

	var res *core.IngestResult
	var err error
	if stored != nil {
		res, err = core.RunIngestWithDataset(cfg, stored, nil)
	} else {
		res, err = core.RunIngest(cfg)
	}
	cancelled := err != nil && errors.Is(err, context.Canceled)
	closeWAL := func(prev error) error {
		if wal == nil {
			return prev
		}
		last := wal.NextSeq() - 1
		if cerr := wal.Close(); cerr != nil {
			if prev == nil {
				return fmt.Errorf("closing wal: %w", cerr)
			}
			return prev
		}
		fmt.Fprintf(os.Stderr, "wal %s: closed cleanly at seq %d\n", opts.wal, last)
		return prev
	}
	if err != nil && !cancelled {
		_ = shutdownServer(srv) // the run error dominates
		return closeWAL(err)
	}
	if cancelled {
		// A bind failure cancels the loop through the same context a
		// signal does — surface it instead of reporting a clean stop.
		select {
		case serr := <-serveErr:
			if serr != nil {
				return closeWAL(fmt.Errorf("starting HTTP front: %w", serr))
			}
		default:
		}
		fmt.Fprintf(os.Stderr, "remgen: %v; draining queries\n", err)
	}
	serr := shutdownServer(srv)
	serr = closeWAL(serr)
	if res == nil || res.Store == nil || res.Store.Current() == nil {
		return serr
	}
	stats := res.Store.Stats()
	fmt.Fprintf(os.Stderr, "ingest: %d batch(es) published over %d snapshots (%d retained); serving v%d\n",
		len(res.Batches), stats.Publishes, stats.HistoryLen, stats.CurrentVersion)
	m := res.Store.Current().Map()
	if rerr := reportMap(m, opts.dark, opts.slice); rerr != nil {
		return rerr
	}
	if rerr := writeSnapshotOut(m, opts.snapOut); rerr != nil {
		return rerr
	}
	if rerr := writeCSVOut(m, opts.out); rerr != nil {
		return rerr
	}
	return serr
}

// shutdownServer drains the HTTP front, bounded so a stuck client
// cannot wedge shutdown. A nil server is a no-op.
func shutdownServer(srv *remserve.Server) error {
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// reportStream prints the stream summary and writes the CSV and
// snapshot exports of the final generation.
func reportStream(res *core.StreamResult, shards int, opts streamOpts) error {
	var m *rem.Map
	var err error
	if shards > 0 {
		stats := res.Sharded.Stats()
		fmt.Fprintf(os.Stderr, "stream: %d rounds over %d shards, %d shard publishes\n",
			stats.Rounds, stats.Shards, stats.ShardPublishes)
		for si, ps := range stats.PerShard {
			fmt.Fprintf(os.Stderr, "  shard %d: %d keys, %d publishes, serving v%d\n",
				si, len(res.Sharded.ShardKeys(si)), ps.Publishes, ps.CurrentVersion)
		}
		if m, err = res.Sharded.MergedSnapshot(); err != nil {
			return err
		}
	} else {
		stats := res.Store.Stats()
		fmt.Fprintf(os.Stderr, "stream: %d snapshots published (%d retained); serving v%d\n",
			stats.Publishes, stats.HistoryLen, stats.CurrentVersion)
		m = res.Store.Current().Map()
	}
	if err := reportMap(m, opts.dark, opts.slice); err != nil {
		return err
	}
	if err := writeSnapshotOut(m, opts.snapOut); err != nil {
		return err
	}
	return writeCSVOut(m, opts.out)
}

// writeSnapshotOut exports the map in the binary snapshot codec
// (Map.WriteTo); an empty path is a no-op. The bytes are exactly what
// a remserve /snapshot download of the same generation returns.
func writeSnapshotOut(m *rem.Map, path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := m.WriteTo(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeCSVOut exports the map as CSV to a path or stdout ("-").
func writeCSVOut(m *rem.Map, out string) error {
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "remgen: closing output:", cerr)
			}
		}()
		w = f
	}
	return m.WriteCSV(w)
}
