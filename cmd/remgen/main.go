// Command remgen runs the complete toolchain of the paper end to end:
// simulate the two-UAV survey, preprocess the dataset, train and compare the
// Figure 8 estimator suite, build the fine-grained 3-D REM from the winner,
// and export it as CSV.
//
// Usage:
//
//	remgen -o rem.csv
//	remgen -seed 7 -res 20x16x10 -extended
//	remgen -dataset stored.csv -o rem.csv   # re-analyse a stored mission
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "remgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Uint64("seed", 1, "master seed for the simulated world")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size for training, evaluation and REM rasterisation (results are identical for any value)")
		out      = flag.String("o", "-", "REM CSV output path ('-' for stdout)")
		res      = flag.String("res", "12x10x6", "REM grid resolution as NXxNYxNZ")
		extended = flag.Bool("extended", false, "include IDW/kriging estimators")
		dataCSV  = flag.String("dataset", "", "optional stored dataset CSV to re-analyse instead of flying")
		dark     = flag.Float64("dark", -85, "dark-region threshold in dBm for the coverage summary")
		slice    = flag.Float64("slice", -1, "if ≥ 0, render an ASCII heatmap of the strongest AP at this height (m) to stderr")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*seed)
	cfg.Workers = *workers
	var nx, ny, nz int
	if _, err := fmt.Sscanf(*res, "%dx%dx%d", &nx, &ny, &nz); err != nil {
		return fmt.Errorf("bad -res %q: %w", *res, err)
	}
	cfg.REMResolution = [3]int{nx, ny, nz}
	if *extended {
		cfg.Estimators = core.ExtendedEstimators(*seed)
	}

	var result *core.Result
	var err error
	if *dataCSV != "" {
		f, err := os.Open(*dataCSV)
		if err != nil {
			return err
		}
		data, rerr := dataset.ReadCSV(f)
		if cerr := f.Close(); cerr != nil && rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			return rerr
		}
		result, err = core.RunWithDataset(cfg, data, nil)
		if err != nil {
			return err
		}
	} else {
		result, err = core.Run(cfg)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "dataset: %d samples (%d retained after preprocessing)\n",
		result.Data.Len(), len(result.Pre.Rows))
	fmt.Fprintln(os.Stderr, "estimator comparison (Figure 8):")
	for i, s := range result.Scores {
		marker := ""
		if i == result.Best {
			marker = "  ← best"
		}
		fmt.Fprintf(os.Stderr, "  %-30s RMSE %.4f dB  MAE %.4f dB%s\n", s.Name, s.RMSE, s.MAE, marker)
	}

	m := result.REM
	centre := geom.PaperScanVolume().Center()
	bestKey, bestRSS := m.Strongest(centre)
	fmt.Fprintf(os.Stderr, "REM: %d sources over %v; strongest at centre: %s (%.1f dBm)\n",
		len(m.Keys()), m.Volume().Size(), bestKey, bestRSS)
	fmt.Fprintf(os.Stderr, "coverage ≥ %.0f dBm over %.1f%% of the volume (%d dark cells)\n",
		*dark, 100*m.CoverageFraction(*dark), len(m.DarkRegions(*dark)))

	if *slice >= 0 {
		s, err := m.SliceAt(bestKey, *slice, 60, 24)
		if err != nil {
			return err
		}
		if err := s.Render(os.Stderr); err != nil {
			return err
		}
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "remgen: closing output:", cerr)
			}
		}()
		w = f
	}
	return m.WriteCSV(w)
}
