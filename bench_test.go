// Package repro's top-level benchmarks regenerate every table and figure of
// the paper, one benchmark per experiment (the E1–E11 index of DESIGN.md).
// Each iteration performs the complete experiment, so b.N timings measure
// the full regeneration cost; the measured values themselves are reported
// as custom benchmark metrics so `go test -bench` output doubles as a
// results table.
//
//	go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/geom"
	"repro/internal/ml"
	"repro/internal/ml/knn"
	"repro/internal/ml/nn"
	"repro/internal/parallel"
	"repro/internal/rem"
	"repro/internal/remobs"
	"repro/internal/remserve"
	"repro/internal/remshard"
	"repro/internal/remstore"
	"repro/internal/remwal"
	"repro/internal/simrand"
	"repro/internal/uwb"
)

// BenchmarkFigure5Interference regenerates E1 (Figure 5): APs detected per
// 802.11 channel under each Crazyradio setting.
func BenchmarkFigure5Interference(b *testing.B) {
	var off, on2450 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		off = res.TotalOff()
		on2450 = res.TotalOn(2450)
	}
	b.ReportMetric(off, "APs-radio-off")
	b.ReportMetric(on2450, "APs-radio-2450MHz")
}

// BenchmarkEnduranceTest regenerates E2: the battery endurance test
// (paper: 36 scans over 6 min 12 s).
func BenchmarkEnduranceTest(b *testing.B) {
	var scans, minutes float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Endurance(1)
		if err != nil {
			b.Fatal(err)
		}
		scans = float64(res.Scans)
		minutes = res.FlightTime.Minutes()
	}
	b.ReportMetric(scans, "scans")
	b.ReportMetric(minutes, "flight-min")
}

// BenchmarkMissionDataCollection regenerates E3: the two-UAV validation
// mission and its dataset statistics (paper: 2696 samples, 73 MACs, 49
// SSIDs, mean RSS ≈ −73 dBm).
func BenchmarkMissionDataCollection(b *testing.B) {
	var total, macs, ssids, meanRSS float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMission(1)
		if err != nil {
			b.Fatal(err)
		}
		total = float64(res.Stats.Total)
		macs = float64(res.Stats.DistinctMACs)
		ssids = float64(res.Stats.DistinctSSIDs)
		meanRSS = res.Stats.MeanRSSI
	}
	b.ReportMetric(total, "samples")
	b.ReportMetric(macs, "MACs")
	b.ReportMetric(ssids, "SSIDs")
	b.ReportMetric(meanRSS, "mean-RSS-dBm")
}

// BenchmarkFigure6SamplesPerLocation regenerates E4 (Figure 6): per-UAV,
// per-waypoint sample counts (paper: A=1495 > B=1201).
func BenchmarkFigure6SamplesPerLocation(b *testing.B) {
	var a, bb float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMission(1)
		if err != nil {
			b.Fatal(err)
		}
		a = float64(res.Stats.PerUAV["A"])
		bb = float64(res.Stats.PerUAV["B"])
	}
	b.ReportMetric(a, "UAV-A-samples")
	b.ReportMetric(bb, "UAV-B-samples")
}

// BenchmarkFigure7Histograms regenerates E5 (Figure 7): the 0.5 m-bin
// histograms along x and y whose counts rise toward the building core.
func BenchmarkFigure7Histograms(b *testing.B) {
	var firstX, lastX float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMission(1)
		if err != nil {
			b.Fatal(err)
		}
		bins, err := res.Data.Histogram(dataset.AxisX, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		firstX = float64(bins[0].Count)
		lastX = float64(bins[len(bins)-1].Count)
	}
	b.ReportMetric(firstX, "x-first-bin")
	b.ReportMetric(lastX, "x-last-bin")
}

// BenchmarkFigure8ModelRMSE regenerates E6 (Figure 8): the estimator RMSE
// comparison (paper: baseline 4.8107, best kNN 4.4186, NN 4.4870 dBm).
func BenchmarkFigure8ModelRMSE(b *testing.B) {
	var baseline, best, nn float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(1, false, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Scores {
			switch s.Name {
			case "baseline mean-per-MAC":
				baseline = s.RMSE
			case "NN 16-node sigmoid Adam":
				nn = s.RMSE
			}
		}
		best = res.Scores[res.Best].RMSE
	}
	b.ReportMetric(baseline, "baseline-RMSE-dB")
	b.ReportMetric(best, "best-kNN-RMSE-dB")
	b.ReportMetric(nn, "NN-RMSE-dB")
}

// BenchmarkAnchorAblation regenerates E7: hover localization accuracy vs
// anchor count (paper cites ≈9 cm at 6 anchors).
func BenchmarkAnchorAblation(b *testing.B) {
	var sixAnchorTWR float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AnchorAblation(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Anchors == 6 && row.Mode == uwb.TWR {
				sixAnchorTWR = row.MeanErrM
			}
		}
	}
	b.ReportMetric(sixAnchorTWR*100, "hover-err-cm-6anchors")
}

// BenchmarkMitigationAblation regenerates E8: the radio-off-during-scan
// design versus leaving the radio on.
func BenchmarkMitigationAblation(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.MitigationAblation(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		loss = res.LossFraction()
	}
	b.ReportMetric(100*loss, "samples-lost-pct")
}

// BenchmarkWaypointDensitySweep regenerates E9: prediction RMSE versus the
// number of surveyed waypoints.
func BenchmarkWaypointDensitySweep(b *testing.B) {
	var sparse, dense float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.DensitySweep(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		sparse = res.Rows[0].BestRMSE
		dense = res.Rows[len(res.Rows)-1].BestRMSE
	}
	b.ReportMetric(sparse, "RMSE-8wp-dB")
	b.ReportMetric(dense, "RMSE-72wp-dB")
}

// BenchmarkGridSearch regenerates E10: the §III-B kNN hyper-parameter grid
// search (paper winners: k=3/distance/p=2 plain, k=16 scaled).
func BenchmarkGridSearch(b *testing.B) {
	var bestPlainK, bestScaledK float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.GridSearchReproduction(1, 0)
		if err != nil {
			b.Fatal(err)
		}
		bestPlainK = res.BestPlain()["k"]
		bestScaledK = res.BestScaled()["k"]
	}
	b.ReportMetric(bestPlainK, "best-k-plain")
	b.ReportMetric(bestScaledK, "best-k-scaled")
}

// BenchmarkLighthouseComparison regenerates E11: two-station Lighthouse vs
// the paper's 8-anchor UWB deployment (paper §IV: comparable precision with
// fewer anchors).
func BenchmarkLighthouseComparison(b *testing.B) {
	var uwbErr, lhErr float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.LighthouseComparison(1)
		if err != nil {
			b.Fatal(err)
		}
		uwbErr = res.Rows[0].MeanErrM
		lhErr = res.Rows[1].MeanErrM
	}
	b.ReportMetric(uwbErr*100, "UWB-err-cm")
	b.ReportMetric(lhErr*100, "lighthouse-err-cm")
}

// ---------------------------------------------------------------------------
// Concurrency/index micro-benchmarks: the worker-pool BuildMap against its
// sequential baseline, KD-tree kNN against the brute-force scan, and the
// parallel grid search against single-worker evaluation. All pairs produce
// byte-identical outputs; only wall-clock differs.

// benchTrainingSet builds a paper-scale synthetic design matrix: 2500
// samples over 40 one-hot MACs at scale 3 (the winning Figure 8 encoding).
func benchTrainingSet(nKeys int) ([][]float64, []float64) {
	rng := simrand.New(1234)
	const n = 2500
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, 3+nKeys)
		row[0] = rng.Range(0, 4)
		row[1] = rng.Range(0, 3)
		row[2] = rng.Range(0, 2.6)
		row[3+rng.Intn(nKeys)] = 3
		x[i] = row
		y[i] = -60 - 8*math.Hypot(row[0]-2, row[1]-1.5) + rng.Gauss(0, 2)
	}
	return x, y
}

func fitBenchKNN(b *testing.B, brute bool) *knn.Regressor {
	b.Helper()
	cfg := knn.PaperScaledConfig()
	cfg.BruteForce = brute
	r, err := knn.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	x, y := benchTrainingSet(40)
	if err := r.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	return r
}

func benchmarkKNNPredict(b *testing.B, brute bool) {
	r := fitBenchKNN(b, brute)
	rng := simrand.New(77)
	queries := make([][]float64, 256)
	for i := range queries {
		q := make([]float64, 3+40)
		q[0], q[1], q[2] = rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
		q[3+rng.Intn(40)] = 3
		queries[i] = q
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Predict(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNPredictBruteForce is the seed's O(n)-scan baseline.
func BenchmarkKNNPredictBruteForce(b *testing.B) { benchmarkKNNPredict(b, true) }

// BenchmarkKNNPredictKDTree is the per-key-subtree KD-tree index; its
// speedup over the brute-force benchmark is the index's win.
func BenchmarkKNNPredictKDTree(b *testing.B) { benchmarkKNNPredict(b, false) }

// benchmarkBuildMap rasterises a 20×16×10 map over 8 keys from a fitted
// kNN with the given worker count.
func benchmarkBuildMap(b *testing.B, workers int) {
	const nKeys = 8
	cfg := knn.PaperScaledConfig()
	r, err := knn.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	x, y := benchTrainingSet(nKeys)
	if err := r.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	vol := geom.PaperScanVolume()
	predict := func(centers []geom.Vec3, keyIdx int) ([]float64, error) {
		qs := make([][]float64, len(centers))
		for i, p := range centers {
			q := make([]float64, 3+nKeys)
			q[0], q[1], q[2] = p.X, p.Y, p.Z
			q[3+keyIdx] = 3
			qs[i] = q
		}
		return r.PredictBatch(qs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rem.BuildMapBatch(vol, 20, 16, 10, keys, predict, rem.BuildOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildMapSequential is the single-worker baseline.
func BenchmarkBuildMapSequential(b *testing.B) { benchmarkBuildMap(b, 1) }

// BenchmarkBuildMapParallel uses one worker per CPU; the speedup over the
// sequential benchmark is the pool's win (byte-identical output).
func BenchmarkBuildMapParallel(b *testing.B) { benchmarkBuildMap(b, 0) }

// ---------------------------------------------------------------------------
// REM snapshot benchmarks (BENCH_rem.json): query throughput on the tiled
// layout, a paper-scale full build, the incremental two-key rebuild
// against it, and store-mediated queries. The incremental/full ratio is
// the tiling win: rebuild cost is proportional to the dirty key set.

// benchStreamEstimator fits the per-MAC kNN (the streaming default) on a
// paper-scale synthetic set over nKeys MACs.
func benchStreamEstimator(b *testing.B, nKeys int) *knn.PerKey {
	b.Helper()
	p := &knn.PerKey{Sub: knn.PaperPlainConfig(), KeyOffset: 3}
	x, y := benchTrainingSet(nKeys)
	if err := p.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	return p
}

// benchREMSetup fits the streaming estimator and returns its batched
// cell predictor plus the 44-key vocabulary — without building a map.
func benchREMSetup(b *testing.B) (rem.BatchPredictFunc, []string) {
	b.Helper()
	const nKeys = 44
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	return core.BatchPredictorFor(benchStreamEstimator(b, nKeys), 3+nKeys, 3), keys
}

// benchREMMap builds the paper-resolution map (12×10×6 over 44 keys).
func benchREMMap(b *testing.B) (*rem.Map, rem.BatchPredictFunc, []string) {
	b.Helper()
	predict, keys := benchREMSetup(b)
	m, err := rem.BuildMapBatch(geom.PaperScanVolume(), 12, 10, 6, keys, predict, rem.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return m, predict, keys
}

// BenchmarkREMQueryAt is trilinear point-query throughput on the tiled,
// stride-hoisted layout (one op = one At). The pre-refactor monolithic
// flat layout measured 194.7 ns/op on this machine (BENCH_rem.json).
func BenchmarkREMQueryAt(b *testing.B) {
	const nKeys = 44
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	predict := func(centers []geom.Vec3, keyIdx int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			out[i] = -60 - p.X - 2*p.Y - 3*p.Z - float64(keyIdx)
		}
		return out, nil
	}
	m, err := rem.BuildMapBatch(geom.PaperScanVolume(), 12, 10, 6, keys, predict, rem.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rng := simrand.New(99)
	pts := make([]geom.Vec3, 512)
	for i := range pts {
		pts[i] = geom.V(rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6))
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := m.At(keys[i%nKeys], pts[i%len(pts)])
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

// BenchmarkREMStoreQuery is BenchmarkREMQueryAt through the concurrent
// snapshot store: one atomic pointer load plus two counter increments on
// top of the map query.
func BenchmarkREMStoreQuery(b *testing.B) {
	m, _, keys := benchREMMap(b)
	st := remstore.New(0)
	if _, err := st.Publish(m, len(keys)); err != nil {
		b.Fatal(err)
	}
	rng := simrand.New(99)
	pts := make([]geom.Vec3, 512)
	for i := range pts {
		pts[i] = geom.V(rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6))
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, err := st.At(keys[i%len(keys)], pts[i%len(pts)])
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

// BenchmarkREMStoreQueryObserved is BenchmarkREMStoreQuery with a
// remobs Observer attached. The PR 10 acceptance bound is that this
// stays within noise of the unobserved number: the query counters the
// store already keeps are bridged at scrape time (CounterFunc), so
// attaching instruments adds no per-query work at all — the CI bench
// smoke asserts ≤ 2 ns/op of drift.
func BenchmarkREMStoreQueryObserved(b *testing.B) {
	m, _, keys := benchREMMap(b)
	st := remstore.New(0)
	st.SetObserver(remobs.New(0))
	if _, err := st.Publish(m, len(keys)); err != nil {
		b.Fatal(err)
	}
	rng := simrand.New(99)
	pts := make([]geom.Vec3, 512)
	for i := range pts {
		pts[i] = geom.V(rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6))
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _, err := st.At(keys[i%len(keys)], pts[i%len(pts)])
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

// BenchmarkREMFullRebuild rasterises the whole paper-scale map from
// scratch — the from-scratch baseline for the incremental rebuild.
func BenchmarkREMFullRebuild(b *testing.B) {
	predict, keys := benchREMSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rem.BuildMapBatch(geom.PaperScanVolume(), 12, 10, 6, keys, predict, rem.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkREMIncrementalRebuild derives a new snapshot with 2 of 44 keys
// dirty (a targeted delta): only those keys' cells are re-predicted, all
// other tiles are shared copy-on-write. The speedup over
// BenchmarkREMFullRebuild is the incremental win and scales with
// keys/dirty.
func BenchmarkREMIncrementalRebuild(b *testing.B) {
	m, predict, _ := benchREMMap(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RebuildKeys([]int{1, 2}, predict, rem.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Delta-sync benchmarks (PR 7): the REMD tile-delta wire a remfollow
// replica pulls instead of the full snapshot codec. Same paper-scale
// 2-of-44-key targeted rebuild as the incremental-rebuild pair above, so
// the wire ratio lines up with the tile-sharing ratio that produces it.

// benchDeltaPair builds the paper-scale map plus a 2-dirty-key successor
// and returns both with their codec sizes.
func benchDeltaPair(b *testing.B) (base, next *rem.Map, fullBytes int) {
	b.Helper()
	base, predict, _ := benchREMMap(b)
	// Shift the rebuilt keys' field so the delta carries real changes —
	// re-running the same deterministic predictor would produce bitwise
	// identical tiles and an empty delta.
	shifted := func(centers []geom.Vec3, keyIdx int) ([]float64, error) {
		out, err := predict(centers, keyIdx)
		for i := range out {
			out[i] -= 2.5
		}
		return out, err
	}
	next, err := base.RebuildKeys([]int{1, 2}, shifted, rem.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := next.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	return base, next, buf.Len()
}

// BenchmarkREMDeltaEncode is the leader's side of /delta: diff two
// generations and serialise the changed tiles. The delta-bytes and
// full-bytes metrics pin the wire saving (acceptance: delta ≤ 25% of
// the full codec for a 2-of-44-key rebuild).
func BenchmarkREMDeltaEncode(b *testing.B) {
	base, next, fullBytes := benchDeltaPair(b)
	var buf []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = rem.AppendDelta(buf[:0], base, next); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(buf)), "delta-bytes")
	b.ReportMetric(float64(fullBytes), "full-bytes")
	b.ReportMetric(float64(len(buf))/float64(fullBytes), "delta/full")
}

// BenchmarkREMDeltaApply is the follower's side: validate (CRC first)
// and materialise the next generation, sharing every unchanged tile
// with the base copy-on-write.
func BenchmarkREMDeltaApply(b *testing.B) {
	base, next, _ := benchDeltaPair(b)
	delta, err := rem.AppendDelta(nil, base, next)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rem.ApplyDelta(base, delta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkREMDeltaRoundTrip is one full replica sync step off the wire:
// encode on the leader, apply on the follower — the compute cost a
// follower poll adds beyond the HTTP transfer itself.
func BenchmarkREMDeltaRoundTrip(b *testing.B) {
	base, next, _ := benchDeltaPair(b)
	var buf []byte
	var err error
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = rem.AppendDelta(buf[:0], base, next); err != nil {
			b.Fatal(err)
		}
		if _, err := rem.ApplyDelta(base, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Batched-query benchmarks: the point-wise At loop against AtBatchInto
// (key resolved once, zero allocations) over the same 512 points —
// byte-identical values, only the per-query overhead differs.

func benchQueryPoints(n int) []geom.Vec3 {
	rng := simrand.New(99)
	pts := make([]geom.Vec3, n)
	for i := range pts {
		pts[i] = geom.V(rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6))
	}
	return pts
}

// BenchmarkREMQueryAtPointwise512 is the baseline: 512 independent At
// calls (each re-resolving the key) per op.
func BenchmarkREMQueryAtPointwise512(b *testing.B) {
	m, _, keys := benchREMMap(b)
	pts := benchQueryPoints(512)
	out := make([]float64, len(pts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keys[i%len(keys)]
		for j, p := range pts {
			v, err := m.At(key, p)
			if err != nil {
				b.Fatal(err)
			}
			out[j] = v
		}
	}
}

// BenchmarkREMQueryAtBatch512 is the batched path: one AtBatchInto per
// op for the same 512 points, bit-identical output.
func BenchmarkREMQueryAtBatch512(b *testing.B) {
	m, _, keys := benchREMMap(b)
	pts := benchQueryPoints(512)
	out := make([]float64, len(pts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.AtBatchInto(out, keys[i%len(keys)], pts); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Contention benchmarks (run with -cpu 1,4): concurrent point queries
// against one monolithic store — every reader bumping the same (padded)
// counters — versus a 4-shard store where readers spread across
// per-shard counters and snapshots. Single-CPU runs isolate the
// per-query overhead; multi-CPU runs expose the cache-line traffic.

// BenchmarkREMStoreQueryParallel hammers one store from b.RunParallel
// goroutines.
func BenchmarkREMStoreQueryParallel(b *testing.B) {
	m, _, keys := benchREMMap(b)
	st := remstore.New(0)
	if _, err := st.Publish(m, len(keys)); err != nil {
		b.Fatal(err)
	}
	pts := benchQueryPoints(512)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := st.At(keys[i%len(keys)], pts[i%len(pts)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkShardedQueryParallel is the same query stream routed across a
// 4-shard store: one extra map lookup per query buys contention-free
// counters and per-shard snapshot loads.
func BenchmarkShardedQueryParallel(b *testing.B) {
	predict, keys := benchREMSetup(b)
	st, err := remshard.New(keys, remshard.Config{
		Shards: 4, Volume: geom.PaperScanVolume(), Resolution: [3]int{12, 10, 6},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Rebuild(benchAllKeys(len(keys)), predict, rem.BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	pts := benchQueryPoints(512)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := st.At(keys[i%len(keys)], pts[i%len(pts)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func benchAllKeys(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// ---------------------------------------------------------------------------
// Sharded-rebuild scaling (BENCH_rem.json): a fixed budget of 8
// localized update rounds — 2 dirty keys each, confined to one shard by
// a range partitioner — processed as independent per-shard chains. With
// S shards the chains run concurrently (each rebuild single-threaded, so
// the measured scaling is purely the shard-parallel dimension); with 1
// shard every round serialises on the single snapshot chain, which is
// exactly the monolithic store's constraint. Total rasterisation work is
// identical at every shard count.

func benchmarkShardedRebuild(b *testing.B, shards int) {
	predict, keys := benchREMSetup(b)
	part := remshard.PartitionFunc(func(key string, n int) int {
		var i int
		if _, err := fmt.Sscanf(key, "key%02d", &i); err != nil {
			return -1
		}
		return i * n / len(keys)
	})
	const totalRounds = 8
	cfg := remshard.Config{
		Shards: shards, Partitioner: part,
		Volume: geom.PaperScanVolume(), Resolution: [3]int{12, 10, 6},
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		b.StopTimer()
		st, err := remshard.New(keys, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := st.Rebuild(benchAllKeys(len(keys)), predict, rem.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
		// Each shard's localized dirty set: its first two keys, by
		// global index.
		dirty := make([][]int, shards)
		for s := range dirty {
			sk := st.ShardKeys(s)
			if len(sk) < 2 {
				b.Fatalf("shard %d owns %d keys; the range partitioner should give it ≥2", s, len(sk))
			}
			for _, k := range sk[:2] {
				var gi int
				if _, err := fmt.Sscanf(k, "key%02d", &gi); err != nil {
					b.Fatal(err)
				}
				dirty[s] = append(dirty[s], gi)
			}
		}
		b.StartTimer()
		err = parallel.ForEach(shards, shards, func(s int) error {
			// Round-robin assignment: shard s owns rounds s, s+S, …; its
			// rounds chain on its own snapshot history, independent of
			// every other shard's chain.
			for r := s; r < totalRounds; r += shards {
				if _, err := st.Rebuild(dirty[s], predict, rem.BuildOptions{Workers: 1}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardedRebuild1(b *testing.B) { benchmarkShardedRebuild(b, 1) }
func BenchmarkShardedRebuild2(b *testing.B) { benchmarkShardedRebuild(b, 2) }
func BenchmarkShardedRebuild4(b *testing.B) { benchmarkShardedRebuild(b, 4) }
func BenchmarkShardedRebuild8(b *testing.B) { benchmarkShardedRebuild(b, 8) }

// ---------------------------------------------------------------------------
// Insert-log merge-threshold frontier (ROADMAP "insert-log tuning"): an
// interleaved observe/query stream against the shared-feature-space kNN,
// swept across thresholds. Small thresholds keep the per-query linear
// log scan short but rebuild subtrees often; large ones amortise
// rebuilds but tax every query. t=0 is the derived ≈√n default.

func benchmarkKNNMergeFrontier(b *testing.B, threshold int) {
	cfg := knn.PaperScaledConfig()
	cfg.MergeThreshold = threshold
	// 2500 synthetic rows: the first 2000 are the initial fit, the rest
	// stream in 8-row batches.
	x, y := benchTrainingSet(40)
	const fitRows = 2000
	queries := make([][]float64, 32)
	rng := simrand.New(77)
	for i := range queries {
		q := make([]float64, 3+40)
		q[0], q[1], q[2] = rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)
		q[3+rng.Intn(40)] = 3
		queries[i] = q
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		b.StopTimer()
		r, err := knn.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Fit(x[:fitRows], y[:fitRows]); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		// 62 cycles of: observe 8 rows, answer 32 queries.
		for lo := fitRows; lo+8 <= len(x); lo += 8 {
			if _, err := r.Observe(x[lo:lo+8], y[lo:lo+8]); err != nil {
				b.Fatal(err)
			}
			if _, err := r.PredictBatch(queries); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkKNNMergeFrontierAuto is the derived ≈√n threshold (the new
// default when Config.MergeThreshold is unset).
func BenchmarkKNNMergeFrontierAuto(b *testing.B) { benchmarkKNNMergeFrontier(b, 0) }
func BenchmarkKNNMergeFrontier16(b *testing.B)   { benchmarkKNNMergeFrontier(b, 16) }
func BenchmarkKNNMergeFrontier128(b *testing.B)  { benchmarkKNNMergeFrontier(b, 128) }
func BenchmarkKNNMergeFrontier512(b *testing.B)  { benchmarkKNNMergeFrontier(b, 512) }

// benchmarkGridSearch evaluates the §III-B kNN hyper-parameter grid on a
// synthetic training set with the given worker count.
func benchmarkGridSearch(b *testing.B, workers int) {
	x, y := benchTrainingSet(12)
	factory := func(p ml.Params) (ml.Estimator, error) {
		return knn.New(knn.Config{
			K:          int(p["k"]),
			Weights:    knn.Weighting(p["weights"]),
			MinkowskiP: p["p"],
		})
	}
	candidates := ml.Grid(map[string][]float64{
		"k":       {1, 2, 3, 5, 8, 16, 32},
		"weights": {float64(knn.Uniform), float64(knn.Distance)},
		"p":       {1, 2},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.GridSearchWorkers(factory, candidates, x, y, 0.25, simrand.New(9), workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSearchSequential is the single-worker baseline.
func BenchmarkGridSearchSequential(b *testing.B) { benchmarkGridSearch(b, 1) }

// BenchmarkGridSearchParallel evaluates candidates on one worker per CPU.
func BenchmarkGridSearchParallel(b *testing.B) { benchmarkGridSearch(b, 0) }

// ---------------------------------------------------------------------------
// NN kernel benchmarks: minibatch GEMM training against the per-sample
// compatibility path (the seed's numerics), and batched zero-allocation
// inference against the per-sample Predict loop. Training modes are
// different (documented) numerics; the two inference paths are
// byte-identical.

// benchNNSet is a paper-shaped design matrix — coordinates plus the
// winning 40-MAC one-hot block (the Figure 8 scaled encoding) — sized so
// one full PaperConfig training run stays benchmarkable.
func benchNNSet() ([][]float64, []float64) {
	rng := simrand.New(1234)
	const n, nKeys = 1200, 40
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		row := make([]float64, 3+nKeys)
		row[0] = rng.Range(0, 4)
		row[1] = rng.Range(0, 3)
		row[2] = rng.Range(0, 2.6)
		row[3+rng.Intn(nKeys)] = 3
		x[i] = row
		y[i] = -60 - 8*math.Hypot(row[0]-2, row[1]-1.5) + rng.Gauss(0, 2)
	}
	return x, y
}

func benchmarkNNTrain(b *testing.B, perSample bool) {
	x, y := benchNNSet()
	cfg := nn.PaperConfig(4242)
	cfg.PerSampleUpdates = perSample
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := nn.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNTrain is the default minibatch GEMM training path.
func BenchmarkNNTrain(b *testing.B) { benchmarkNNTrain(b, false) }

// BenchmarkNNTrainPerSample is the compatibility path — the seed
// implementation's exact numerics — and the baseline for BENCH_nn.json.
func BenchmarkNNTrainPerSample(b *testing.B) { benchmarkNNTrain(b, true) }

func fitBenchNN(b *testing.B) (*nn.Network, [][]float64) {
	b.Helper()
	x, y := benchNNSet()
	net, err := nn.New(nn.PaperConfig(4242))
	if err != nil {
		b.Fatal(err)
	}
	if err := net.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	return net, x[:512]
}

// BenchmarkNNPredict is the per-sample inference loop (the seed's only
// path); one op is 512 queries.
func BenchmarkNNPredict(b *testing.B) {
	net, queries := fitBenchNN(b)
	out := make([]float64, len(queries))
	if _, err := net.Predict(queries[0]); err != nil { // warm the workspace pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, q := range queries {
			v, err := net.Predict(q)
			if err != nil {
				b.Fatal(err)
			}
			out[j] = v
		}
	}
}

// BenchmarkNNPredictBatch is batched inference into a reused buffer: one
// GEMM per layer for all 512 queries, byte-identical to BenchmarkNNPredict's
// values, and zero heap allocations per op after warm-up.
func BenchmarkNNPredictBatch(b *testing.B) {
	net, queries := fitBenchNN(b)
	out := make([]float64, len(queries))
	if err := net.PredictBatchInto(out, queries); err != nil { // warm the workspace pool
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := net.PredictBatchInto(out, queries); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// HTTP serving (BENCH_rem.json): the remserve handlers driven directly
// (no socket, no net/http request parsing), so the measured delta against
// BenchmarkShardedQueryParallel — the same 4-shard store queried through
// the library — is exactly the serving layer's own cost: query-string
// scan, store query, pooled JSON assembly.

// benchServeRW is a minimal ResponseWriter: a reusable header map and a
// byte-count sink, so the handler's own allocations are the only ones
// the benchmark sees.
type benchServeRW struct {
	h    http.Header
	n    int
	code int
}

func (w *benchServeRW) Header() http.Header         { return w.h }
func (w *benchServeRW) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *benchServeRW) WriteHeader(c int)           { w.code = c }

func benchServeServer(b *testing.B) (*remserve.Server, []string) {
	b.Helper()
	predict, keys := benchREMSetup(b)
	ss, err := remshard.New(keys, remshard.Config{
		Shards: 4, Volume: geom.PaperScanVolume(), Resolution: [3]int{12, 10, 6},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ss.Rebuild(benchAllKeys(len(keys)), predict, rem.BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	return remserve.NewSharded(ss, remserve.Options{}), keys
}

// BenchmarkServeAt is GET /at through the handler: one op = one routed
// point query rendered to JSON. Compare against
// BenchmarkShardedQueryParallel (the no-HTTP library baseline) for the
// serving layer's per-query overhead; zero allocations per op after
// warm-up.
func BenchmarkServeAt(b *testing.B) {
	srv, keys := benchServeServer(b)
	pts := benchQueryPoints(512)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &benchServeRW{h: make(http.Header)}
		reqs := make([]*http.Request, len(keys))
		for i, k := range keys {
			p := pts[i%len(pts)]
			reqs[i] = httptest.NewRequest("GET", fmt.Sprintf("/at?key=%s&x=%g&y=%g&z=%g", k, p.X, p.Y, p.Z), nil)
		}
		i := 0
		for pb.Next() {
			w.code = 0
			srv.ServeHTTP(w, reqs[i%len(reqs)])
			if w.code != 0 && w.code != http.StatusOK {
				b.Fatalf("status %d", w.code)
			}
			i++
		}
	})
}

// BenchmarkServeAtObserved is BenchmarkServeAt with a remobs Observer
// attached: the per-request cost of the instrumentation wrapper — a
// pooled status recorder, two clock reads, one counter increment and
// one histogram observe — still at zero allocations per op.
func BenchmarkServeAtObserved(b *testing.B) {
	predict, keys := benchREMSetup(b)
	ss, err := remshard.New(keys, remshard.Config{
		Shards: 4, Volume: geom.PaperScanVolume(), Resolution: [3]int{12, 10, 6},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ss.Rebuild(benchAllKeys(len(keys)), predict, rem.BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	obs := remobs.New(0)
	ss.SetObserver(obs)
	srv := remserve.NewSharded(ss, remserve.Options{Observer: obs})
	pts := benchQueryPoints(512)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &benchServeRW{h: make(http.Header)}
		reqs := make([]*http.Request, len(keys))
		for i, k := range keys {
			p := pts[i%len(pts)]
			reqs[i] = httptest.NewRequest("GET", fmt.Sprintf("/at?key=%s&x=%g&y=%g&z=%g", k, p.X, p.Y, p.Z), nil)
		}
		i := 0
		for pb.Next() {
			w.code = 0
			srv.ServeHTTP(w, reqs[i%len(reqs)])
			if w.code != 0 && w.code != http.StatusOK {
				b.Fatalf("status %d", w.code)
			}
			i++
		}
	})
}

// ---------------------------------------------------------------------------
// Coverage-index benchmarks (BENCH_rem.json "coverage_index"): Strongest
// through the materialized per-cube candidate index against the brute
// O(keys) scan — same map, bit-identical answers (rule 9), only the
// scan-set size differs. The map is a realistic best-server scenario: 44
// APs at distinct positions under log-distance path loss, so each cube
// has a small dominant candidate set. (The kNN-fitted benchREMMap is the
// adversarial other extreme — every key trained on the same target, so
// per-cube fields are near-tied and candidate sets stay large; the index
// prunes little there, honestly reported in BENCH_rem.json.)

// benchStrongestMap rasterises the 44-AP log-distance map at paper
// resolution.
func benchStrongestMap(b *testing.B) (*rem.Map, []string) {
	b.Helper()
	const nKeys = 44
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key%02d", i)
	}
	rng := simrand.New(4242)
	aps := make([]geom.Vec3, nKeys)
	for i := range aps {
		aps[i] = geom.V(rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6))
	}
	predict := func(centers []geom.Vec3, k int) ([]float64, error) {
		out := make([]float64, len(centers))
		for i, p := range centers {
			d := p.Dist(aps[k])
			if d < 0.1 {
				d = 0.1
			}
			out[i] = -40 - 20*math.Log10(d) - 0.1*float64(k)
		}
		return out, nil
	}
	m, err := rem.BuildMapBatch(geom.PaperScanVolume(), 12, 10, 6, keys, predict, rem.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return m, keys
}

// reportCoverStats attaches the index shape to a benchmark: mean
// candidates per cube (the pruned scan width; brute scans all 44) and
// index bytes.
func reportCoverStats(b *testing.B, m *rem.Map) {
	b.Helper()
	if cs, ok := m.CoverIndexStats(); ok {
		b.ReportMetric(float64(cs.Candidates)/float64(cs.Cubes), "candidates/cube")
		b.ReportMetric(float64(cs.Bytes), "index-bytes")
	}
}

// BenchmarkStrongest is one indexed best-server point query: locate the
// cube, scan its candidate bitmask in vocabulary order. Bit-identical
// to BenchmarkStrongestBrute's answers; the speedup is the index's win.
func BenchmarkStrongest(b *testing.B) {
	m, _ := benchStrongestMap(b)
	m.BuildCoverIndex()
	pts := benchQueryPoints(512)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, v := m.Strongest(pts[i%len(pts)])
		sink += v
	}
	_ = sink
	reportCoverStats(b, m)
}

// BenchmarkStrongestBrute is the pre-index baseline on the same map:
// interpolate all 44 keys, keep the max.
func BenchmarkStrongestBrute(b *testing.B) {
	m, _ := benchStrongestMap(b)
	pts := benchQueryPoints(512)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, v := m.StrongestBrute(pts[i%len(pts)])
		sink += v
	}
	_ = sink
}

// BenchmarkStrongestBatch512 is the batched indexed path (the engine
// behind POST /strongest): one StrongestBatchInto per op over 512
// points, zero allocations.
func BenchmarkStrongestBatch512(b *testing.B) {
	m, _ := benchStrongestMap(b)
	m.BuildCoverIndex()
	pts := benchQueryPoints(512)
	keys := make([]string, len(pts))
	vals := make([]float64, len(pts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.StrongestBatchInto(keys, vals, pts); err != nil {
			b.Fatal(err)
		}
	}
	reportCoverStats(b, m)
}

// BenchmarkStrongestBatch512Brute is the same batch through the brute
// scan — the pre-index serving cost of one 512-point batch.
func BenchmarkStrongestBatch512Brute(b *testing.B) {
	m, _ := benchStrongestMap(b)
	pts := benchQueryPoints(512)
	keys := make([]string, len(pts))
	vals := make([]float64, len(pts))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.StrongestBatchBruteInto(keys, vals, pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrongestKNNMap is the honest adversarial case: the indexed
// point query on the kNN-fitted benchREMMap, whose near-tied per-key
// fields keep candidate sets large. The candidates/cube metric shows
// how much pruning survives.
func BenchmarkStrongestKNNMap(b *testing.B) {
	m, _, _ := benchREMMap(b)
	m.BuildCoverIndex()
	pts := benchQueryPoints(512)
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, v := m.Strongest(pts[i%len(pts)])
		sink += v
	}
	_ = sink
	reportCoverStats(b, m)
}

// BenchmarkCoverIndexBuild is the from-scratch index construction a
// publish pays when no parent index exists: per-cube corner bounds for
// all 44 keys, threshold, bitmask fill.
func BenchmarkCoverIndexBuild(b *testing.B) {
	m, _ := benchStrongestMap(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DropCoverIndex()
		m.BuildCoverIndex()
	}
	reportCoverStats(b, m)
}

// BenchmarkCoverIndexMend is the incremental maintenance cost: a
// 2-of-44-key RebuildKeys against an indexed base, so each op pays the
// targeted re-rasterisation PLUS the index mend (dirty-cube bound
// refresh, untouched index tiles shared). Compare against
// BenchmarkREMIncrementalRebuild — the same rebuild without an index —
// to isolate the mend overhead.
func BenchmarkCoverIndexMend(b *testing.B) {
	m, predict, _ := benchREMMap(b)
	m.BuildCoverIndex()
	// Shift the rebuilt keys' field so the rebuild carries real changes —
	// re-running the same deterministic predictor would share every tile
	// and the mend would degenerate to the trivial all-shared path.
	shifted := func(centers []geom.Vec3, keyIdx int) ([]float64, error) {
		out, err := predict(centers, keyIdx)
		for i := range out {
			out[i] -= 2.5
		}
		return out, err
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := m.RebuildKeys([]int{1, 2}, shifted, rem.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !next.HasCoverIndex() {
			b.Fatal("rebuild dropped the index")
		}
	}
}

// TestMain stamps the benchmark environment into every `go test -bench`
// run: BENCH_*.json sections carry num_cpu/gomaxprocs so 1-vCPU numbers
// can never silently masquerade as scaling results, and this line is
// where a re-recorder copies them from — mechanical, no guessing.
func TestMain(m *testing.M) {
	fmt.Fprintf(os.Stderr, "bench-env: num_cpu=%d gomaxprocs=%d go=%s arch=%s/%s\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), runtime.Version(), runtime.GOOS, runtime.GOARCH)
	os.Exit(m.Run())
}

// BenchmarkServeAtBatch is POST /at with 512 points through the
// handler: one op = one batch (body decode, one AtBatchInto, JSON
// array render), so per-point cost is ns/op ÷ 512.
func BenchmarkServeAtBatch(b *testing.B) {
	srv, keys := benchServeServer(b)
	pts := benchQueryPoints(512)
	var body bytes.Buffer
	fmt.Fprintf(&body, "{\"key\":%q,\"points\":[", keys[0])
	for i, p := range pts {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, "[%g,%g,%g]", p.X, p.Y, p.Z)
	}
	body.WriteString("]}")
	payload := body.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &benchServeRW{h: make(http.Header)}
		req := httptest.NewRequest("POST", "/at", nil)
		var rd bytes.Reader
		req.Body = io.NopCloser(&rd)
		for pb.Next() {
			w.code = 0
			rd.Reset(payload)
			srv.ServeHTTP(w, req)
			if w.code != 0 && w.code != http.StatusOK {
				b.Fatalf("status %d", w.code)
			}
		}
	})
}

// BenchmarkServeAtBatchBinary is the same 512-point batch over the
// binary wire format, both directions (Content-Type and Accept both
// application/x-rem-batch): one op = header validation, coordinates
// decoded straight into the pooled query buffer, one AtBatchInto, and
// the raw value bits appended back out — no decimal text anywhere.
// Compare per-point cost (ns/op ÷ 512) against BenchmarkServeAtBatch
// (the JSON wire) and BenchmarkREMQueryAtBatch512 (the library floor);
// the acceptance bar is ≤ 2× the floor. 0 allocs/op after warm-up.
func BenchmarkServeAtBatchBinary(b *testing.B) {
	srv, keys := benchServeServer(b)
	pts := benchQueryPoints(512)
	payload := remserve.AppendBatchRequest(nil, keys[0], pts)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &benchServeRW{h: make(http.Header)}
		req := httptest.NewRequest("POST", "/at", nil)
		req.Header.Set("Content-Type", remserve.WireContentType)
		req.Header.Set("Accept", remserve.WireContentType)
		var rd bytes.Reader
		req.Body = io.NopCloser(&rd)
		for pb.Next() {
			w.code = 0
			rd.Reset(payload)
			srv.ServeHTTP(w, req)
			if w.code != 0 && w.code != http.StatusOK {
				b.Fatalf("status %d", w.code)
			}
		}
	})
}

// BenchmarkServeStrongestBatch is POST /strongest with 512 points
// through the handler over the JSON wire: body decode, one
// StrongestBatchInto through the sharded backend's pooled merge, keys
// and values rendered back out.
func BenchmarkServeStrongestBatch(b *testing.B) {
	srv, _ := benchServeServer(b)
	pts := benchQueryPoints(512)
	var body bytes.Buffer
	body.WriteString(`{"points":[`)
	for i, p := range pts {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, "[%g,%g,%g]", p.X, p.Y, p.Z)
	}
	body.WriteString("]}")
	payload := body.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &benchServeRW{h: make(http.Header)}
		req := httptest.NewRequest("POST", "/strongest", nil)
		var rd bytes.Reader
		req.Body = io.NopCloser(&rd)
		for pb.Next() {
			w.code = 0
			rd.Reset(payload)
			srv.ServeHTTP(w, req)
			if w.code != 0 && w.code != http.StatusOK {
				b.Fatalf("status %d", w.code)
			}
		}
	})
}

// BenchmarkServeStrongestBatchBinary is the same 512-point strongest
// batch over the binary wire both ways ("REMQ" in, "REMW" out): zero
// text codec work, 0 allocs/op after warm-up.
func BenchmarkServeStrongestBatchBinary(b *testing.B) {
	srv, _ := benchServeServer(b)
	pts := benchQueryPoints(512)
	payload := remserve.AppendStrongestRequest(nil, pts)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := &benchServeRW{h: make(http.Header)}
		req := httptest.NewRequest("POST", "/strongest", nil)
		req.Header.Set("Content-Type", remserve.WireContentType)
		req.Header.Set("Accept", remserve.WireContentType)
		var rd bytes.Reader
		req.Body = io.NopCloser(&rd)
		for pb.Next() {
			w.code = 0
			rd.Reset(payload)
			srv.ServeHTTP(w, req)
			if w.code != 0 && w.code != http.StatusOK {
				b.Fatalf("status %d", w.code)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Ingestion benchmarks (BENCH_rem.json "ingestion"): the durable write
// edge. POST /observe through the handler — JSON vs the binary REMO
// codec — then the WAL itself: append cost with and without the fsync
// barrier, and replay throughput (the restart path).

// benchIngestServer is benchServeServer with POST /observe enabled: the
// queue is unbounded enough that the benchmark never sheds, and each op
// drains its own submission so the channel stays shallow.
func benchIngestServer(b *testing.B) (*remserve.Server, *remwal.Queue, string) {
	b.Helper()
	predict, keys := benchREMSetup(b)
	ss, err := remshard.New(keys, remshard.Config{
		Shards: 4, Volume: geom.PaperScanVolume(), Resolution: [3]int{12, 10, 6},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ss.Rebuild(benchAllKeys(len(keys)), predict, rem.BuildOptions{}); err != nil {
		b.Fatal(err)
	}
	q := remwal.NewQueue(remwal.QueueConfig{Capacity: 4})
	srv := remserve.NewSharded(ss, remserve.Options{Ingest: remserve.IngestOptions{Queue: q}})
	return srv, q, keys[0]
}

// benchObserveBatch is a 64-observation batch for key.
func benchObserveBatch(key string) remwal.Batch {
	rng := simrand.New(99)
	bt := remwal.Batch{Key: key}
	for i := 0; i < 64; i++ {
		bt.Points = append(bt.Points, geom.V(rng.Range(0, 4), rng.Range(0, 3), rng.Range(0, 2.6)))
		bt.Values = append(bt.Values, -40-rng.Range(0, 50))
	}
	return bt
}

// benchmarkObserve drives POST /observe with the given body: one op =
// auth + decode + validate + enqueue + drain of one 64-point batch, so
// per-observation cost is ns/op ÷ 64.
func benchmarkObserve(b *testing.B, body []byte, contentType string) {
	srv, q, _ := benchIngestServer(b)
	ctx := context.Background()
	w := &benchServeRW{h: make(http.Header)}
	req := httptest.NewRequest("POST", "/observe", nil)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	var rd bytes.Reader
	req.Body = io.NopCloser(&rd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.code = 0
		rd.Reset(body)
		srv.ServeHTTP(w, req)
		if w.code != 0 && w.code != http.StatusOK {
			b.Fatalf("status %d", w.code)
		}
		if _, err := q.Pop(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObserveJSON(b *testing.B) {
	_, _, key := benchIngestServer(b)
	bt := benchObserveBatch(key)
	var body bytes.Buffer
	fmt.Fprintf(&body, "{\"key\":%q,\"observations\":[", key)
	for i, p := range bt.Points {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, "[%g,%g,%g,%g]", p.X, p.Y, p.Z, bt.Values[i])
	}
	body.WriteString("]}")
	benchmarkObserve(b, body.Bytes(), "")
}

func BenchmarkObserveBinary(b *testing.B) {
	_, _, key := benchIngestServer(b)
	benchmarkObserve(b, remwal.AppendBatch(nil, benchObserveBatch(key)), remserve.WireContentType)
}

// benchmarkWALAppend is one framed record append of a 64-observation
// REMO payload; with SyncAlways every op pays the fsync barrier — the
// durability price the ingest ack includes.
func benchmarkWALAppend(b *testing.B, sync remwal.SyncPolicy) {
	payload := remwal.AppendBatch(nil, benchObserveBatch("key00"))
	l, _, err := remwal.Open(remwal.Config{Dir: b.TempDir(), Sync: sync})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendFsync(b *testing.B)   { benchmarkWALAppend(b, remwal.SyncAlways) }
func BenchmarkWALAppendNoFsync(b *testing.B) { benchmarkWALAppend(b, remwal.SyncNone) }

// BenchmarkWALReplay is the restart path: one op = Open (scan, CRC,
// copy out) of a 1024-record segment set; b.SetBytes reports replay
// throughput over the raw segment bytes.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	payload := remwal.AppendBatch(nil, benchObserveBatch("key00"))
	l, _, err := remwal.Open(remwal.Config{Dir: dir, Sync: remwal.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for i := 0; i < 1024; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
		total += int64(len(payload)) + 8
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, recs, err := remwal.Open(remwal.Config{Dir: dir, Sync: remwal.SyncNone})
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != 1024 {
			b.Fatalf("replayed %d records", len(recs))
		}
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
